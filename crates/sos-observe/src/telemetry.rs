//! Live telemetry plane: lock-free per-worker runtime counters,
//! wall-clock phase profiling, and progress/ETA reporting.
//!
//! The event/metrics layers in this crate are *post-hoc*: they tell you
//! what a run did after it finished. This module is the *live* side —
//! while a million-trial sweep runs, worker threads bump per-worker
//! [`TelemetrySlot`]s (cache-line-padded relaxed atomics: trials done,
//! routes, batches stolen, cache hits, and per-phase nanosecond clocks
//! fed by [`PhaseTimer`]), and any thread can take a coherent-enough
//! [`TelemetrySnapshot`] to render progress, ETA, utilization, or a
//! per-phase wall-clock profile.
//!
//! Three invariants keep this safe to leave compiled into the hot path:
//!
//! * **Disabled means free.** Telemetry is off by default; every entry
//!   point first reads one relaxed [`AtomicBool`]. A disabled
//!   [`PhaseTimer`] never reads the clock.
//! * **Telemetry observes, never steers.** Nothing here feeds back into
//!   trial execution and nothing draws from the trial RNG streams, so
//!   simulation results are bit-identical with telemetry on or off
//!   (pinned by `tests/telemetry.rs`).
//! * **Counters are additive.** Slots are assigned per *thread*
//!   (round-robin over [`MAX_WORKERS`] slots; beyond that threads
//!   share slots), so per-slot numbers are a partition of the totals —
//!   aggregation is a sum, never a merge conflict.
//!
//! The [`ProgressReporter`] wraps the snapshot/diff API in a background
//! thread: a human-readable progress line on stderr at a fixed
//! interval, plus an optional machine-readable sink (append-only JSONL
//! snapshots, or a Prometheus-style text exposition rewritten in
//! place — chosen by file extension, see [`ReporterOptions::out`]).

use crate::metrics::Histogram;
use std::cell::Cell;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of distinct telemetry slots. Threads beyond this share slots
/// round-robin; counters stay correct (they are additive), only the
/// per-worker attribution coarsens.
pub const MAX_WORKERS: usize = 64;

/// Histogram bucket count for per-phase durations: geometric bounds
/// `2^8..=2^31` ns (256 ns .. ~2.1 s) plus overflow.
const PHASE_BUCKETS: usize = 24;

/// The execution phases the engine and attackers attribute wall-clock
/// time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Overlay + ring construction (`build_into`).
    Build,
    /// The attacker's break-in loop (layer traversal).
    BreakIn,
    /// The attacker's congestion phase (flooding known nodes).
    Congestion,
    /// Client routing through the damaged overlay.
    Routing,
}

impl PhaseKind {
    /// Every phase, in display order.
    pub const ALL: [PhaseKind; 4] = [
        PhaseKind::Build,
        PhaseKind::BreakIn,
        PhaseKind::Congestion,
        PhaseKind::Routing,
    ];

    /// Stable label for tables and exposition series.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::Build => "build",
            PhaseKind::BreakIn => "break-in",
            PhaseKind::Congestion => "congestion",
            PhaseKind::Routing => "routing",
        }
    }

    fn index(self) -> usize {
        match self {
            PhaseKind::Build => 0,
            PhaseKind::BreakIn => 1,
            PhaseKind::Congestion => 2,
            PhaseKind::Routing => 3,
        }
    }
}

/// Atomically-accumulated per-phase timing: total nanoseconds, sample
/// count, and a fixed geometric histogram of per-lap durations.
struct PhaseClock {
    total_ns: AtomicU64,
    samples: AtomicU64,
    buckets: [AtomicU64; PHASE_BUCKETS + 1],
}

impl PhaseClock {
    const fn new() -> Self {
        PhaseClock {
            total_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; PHASE_BUCKETS + 1],
        }
    }

    fn add(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Relaxed);
        self.samples.fetch_add(1, Relaxed);
        // Bucket k has inclusive upper bound 2^(8+k); ceil(log2) maps a
        // duration to the same bucket `Histogram::record` would pick
        // over `phase_bounds()`.
        let ceil_log2 = 64 - ns.max(1).wrapping_sub(1).leading_zeros() as usize;
        let idx = ceil_log2.saturating_sub(8).min(PHASE_BUCKETS);
        self.buckets[idx].fetch_add(1, Relaxed);
    }
}

/// The f64 bucket bounds matching the phase clocks' geometric layout,
/// for rebuilding a [`Histogram`] from snapshot counts.
pub fn phase_bounds() -> Vec<f64> {
    (8..8 + PHASE_BUCKETS).map(|p| (1u64 << p) as f64).collect()
}

/// One worker thread's live counters. Cache-line-aligned (and padded by
/// its own size) so two workers' hot counters never share a line; all
/// updates are single relaxed atomic adds — no locks, no CAS loops.
#[repr(align(128))]
pub struct TelemetrySlot {
    trials: AtomicU64,
    routes: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    build_reused: AtomicU64,
    phases: [PhaseClock; PhaseKind::ALL.len()],
}

impl TelemetrySlot {
    const fn new() -> Self {
        TelemetrySlot {
            trials: AtomicU64::new(0),
            routes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            build_reused: AtomicU64::new(0),
            phases: [const { PhaseClock::new() }; PhaseKind::ALL.len()],
        }
    }

    /// Counts one completed trial.
    #[inline]
    pub fn add_trial(&self) {
        self.trials.fetch_add(1, Relaxed);
    }

    /// Counts `n` routed client messages.
    #[inline]
    pub fn add_routes(&self, n: u64) {
        self.routes.fetch_add(n, Relaxed);
    }

    /// Counts one trial batch claimed from a work-stealing queue.
    #[inline]
    pub fn add_batch(&self) {
        self.batches.fetch_add(1, Relaxed);
    }

    /// Counts `n` sweep points answered from cache/dedup.
    #[inline]
    pub fn add_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Relaxed);
    }

    /// Counts one trial whose overlay build was answered by the
    /// engine's per-worker build memo (exact or delta reuse) instead of
    /// a fresh construction.
    #[inline]
    pub fn add_build_reused(&self) {
        self.build_reused.fetch_add(1, Relaxed);
    }

    /// Attributes `ns` nanoseconds of wall clock to `phase`.
    #[inline]
    pub fn add_phase_ns(&self, phase: PhaseKind, ns: u64) {
        self.phases[phase.index()].add(ns);
    }

    /// Busy nanoseconds: the sum over all phase clocks.
    fn busy_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns.load(Relaxed)).sum()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SLOTS: [TelemetrySlot; MAX_WORKERS] = [const { TelemetrySlot::new() }; MAX_WORKERS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
static EXPECTED_TRIALS: AtomicU64 = AtomicU64::new(0);
static EXPECTED_POINTS: AtomicU64 = AtomicU64::new(0);
static POINTS_DONE: AtomicU64 = AtomicU64::new(0);
static POINTS_CACHED: AtomicU64 = AtomicU64::new(0);
// `sosd` robustness counters. Unlike the hot-path worker slots these
// are cold-path events (a shed request, a recovery, a retry), so they
// count unconditionally — the daemon's /metrics and /healthz must show
// them even if the enable flag was toggled around the event.
static SERVE_SHED: AtomicU64 = AtomicU64::new(0);
static SERVE_DEADLINE_EXPIRED: AtomicU64 = AtomicU64::new(0);
static SERVE_RETRIES: AtomicU64 = AtomicU64::new(0);
static SERVE_RECOVERED: AtomicU64 = AtomicU64::new(0);
static SERVE_REBUILDS: AtomicU64 = AtomicU64::new(0);
static SERVE_REQUESTS: [AtomicU64; SERVE_OPS.len()] =
    [const { AtomicU64::new(0) }; SERVE_OPS.len()];
static SERVE_SLOW: AtomicU64 = AtomicU64::new(0);

/// The protocol operations `sosd` counts requests for, in display
/// order (indices match [`TelemetrySnapshot::serve_requests_by_op`]).
pub const SERVE_OPS: [&str; 7] = [
    "ping",
    "analyze",
    "simulate",
    "sweep",
    "profile",
    "shutdown",
    "trace",
];

thread_local! {
    static SLOT_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The instant counters are measured against (first telemetry access).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns the telemetry plane on or off. Off (the default) reduces every
/// instrumented call site to one relaxed boolean load; counters are
/// process-cumulative and are *not* reset by toggling.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the clock epoch before any counter moves
    }
    ENABLED.store(on, Relaxed);
}

/// Whether the telemetry plane is recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// The calling thread's slot, or `None` when telemetry is off — the
/// idiom for hot paths is `if let Some(slot) = telemetry::slot()`.
#[inline]
pub fn slot() -> Option<&'static TelemetrySlot> {
    enabled().then(worker)
}

/// The calling thread's slot (assigned round-robin on first use),
/// regardless of the enabled flag.
pub fn worker() -> &'static TelemetrySlot {
    let idx = SLOT_IDX.with(|cell| {
        let mut idx = cell.get();
        if idx == usize::MAX {
            idx = NEXT_SLOT.fetch_add(1, Relaxed) % MAX_WORKERS;
            cell.set(idx);
        }
        idx
    });
    &SLOTS[idx]
}

/// Announces `n` more trials of planned work (feeds the ETA).
pub fn add_expected_trials(n: u64) {
    if enabled() {
        EXPECTED_TRIALS.fetch_add(n, Relaxed);
    }
}

/// Announces `n` more sweep points of planned work.
pub fn add_expected_points(n: u64) {
    if enabled() {
        EXPECTED_POINTS.fetch_add(n, Relaxed);
    }
}

/// Marks one executed sweep point complete.
pub fn point_done() {
    if enabled() {
        POINTS_DONE.fetch_add(1, Relaxed);
    }
}

/// Marks one sweep point answered from cache/dedup (counts as done, and
/// as a cache hit on the calling thread's slot).
pub fn point_cached() {
    if let Some(slot) = slot() {
        slot.add_cache_hits(1);
        POINTS_DONE.fetch_add(1, Relaxed);
        POINTS_CACHED.fetch_add(1, Relaxed);
    }
}

/// Counts one request shed by the daemon's admission gate (`busy`).
pub fn serve_shed() {
    SERVE_SHED.fetch_add(1, Relaxed);
}

/// Counts one request rejected because its deadline expired before
/// (or while) the daemon could serve it.
pub fn serve_deadline_expired() {
    SERVE_DEADLINE_EXPIRED.fetch_add(1, Relaxed);
}

/// Counts one client-side retry attempt (a re-send beyond a request's
/// first attempt).
pub fn serve_retry() {
    SERVE_RETRIES.fetch_add(1, Relaxed);
}

/// Records `n` cache entries recovered from the journal (or salvaged
/// past corruption) at daemon startup.
pub fn serve_recovered(n: u64) {
    SERVE_RECOVERED.fetch_add(n, Relaxed);
}

/// Counts one executor rebuild after a poisoned lock (a panic left the
/// in-memory state untrustworthy and it was reloaded from the cache).
pub fn serve_rebuild() {
    SERVE_REBUILDS.fetch_add(1, Relaxed);
}

/// Counts one protocol request by operation name. Unknown names are
/// ignored (forward compatibility with ops this build does not know).
pub fn serve_request(op: &str) {
    if let Some(i) = SERVE_OPS.iter().position(|&known| known == op) {
        SERVE_REQUESTS[i].fetch_add(1, Relaxed);
    }
}

/// Counts one request that exceeded the daemon's `--slow-ms`
/// threshold (and was therefore written to the slow-request log).
pub fn serve_slow_request() {
    SERVE_SLOW.fetch_add(1, Relaxed);
}

/// Measures wall-clock spans between instrumented points and attributes
/// them to [`PhaseKind`]s on the calling thread's slot.
///
/// A timer started while telemetry is disabled holds no instant and
/// every call is a no-op — the hot path pays one branch. `lap`
/// attributes the time since the previous lap (or start) and re-arms;
/// `reset` re-arms without attributing, for spans that belong to no
/// phase (or that an inner timer already covered).
pub struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    /// Starts a timer (inert when telemetry is off).
    #[inline]
    pub fn start() -> Self {
        PhaseTimer {
            last: enabled().then(Instant::now),
        }
    }

    /// Attributes the span since the last lap/start to `phase`.
    #[inline]
    pub fn lap(&mut self, phase: PhaseKind) {
        if let Some(prev) = self.last {
            let now = Instant::now();
            worker().add_phase_ns(phase, (now - prev).as_nanos() as u64);
            self.last = Some(now);
        }
    }

    /// Re-arms the timer without attributing the elapsed span.
    #[inline]
    pub fn reset(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }
}

/// Aggregated view of one phase at snapshot time.
#[derive(Debug, Clone)]
pub struct PhaseSnapshot {
    /// Which phase this is.
    pub phase: PhaseKind,
    /// Total attributed wall clock, summed over workers.
    pub total_ns: u64,
    /// Number of laps recorded.
    pub samples: u64,
    /// Distribution of per-lap durations (ns) over [`phase_bounds`].
    pub hist: Histogram,
}

/// One worker slot's totals at snapshot time.
#[derive(Debug, Clone)]
pub struct WorkerSnapshot {
    /// Slot index.
    pub index: usize,
    /// Trials completed by threads on this slot.
    pub trials: u64,
    /// Routes completed.
    pub routes: u64,
    /// Trial batches claimed.
    pub batches: u64,
    /// Sweep cache/dedup hits counted on this slot.
    pub cache_hits: u64,
    /// Trials whose overlay build was answered by the build memo.
    pub build_reused: u64,
    /// Wall clock attributed to any phase.
    pub busy_ns: u64,
}

/// A point-in-time copy of every telemetry counter. Taken with relaxed
/// loads: totals may be a few in-flight updates stale, which is
/// harmless for progress/profiling (and irrelevant to results, which
/// never flow through here).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Wall clock since the telemetry epoch (first enable).
    pub elapsed: Duration,
    /// Trials completed, summed over workers.
    pub trials: u64,
    /// Routes completed.
    pub routes: u64,
    /// Trial batches claimed from work-stealing queues.
    pub batches: u64,
    /// Sweep points answered from cache/dedup.
    pub cache_hits: u64,
    /// Trials whose overlay build came from the engine's build memo
    /// (exact or delta reuse) instead of a fresh construction.
    pub build_reused: u64,
    /// Trials of announced planned work.
    pub expected_trials: u64,
    /// Sweep points of announced planned work.
    pub expected_points: u64,
    /// Sweep points completed (executed or cached).
    pub points_done: u64,
    /// Of those, answered from cache/dedup.
    pub points_cached: u64,
    /// Requests shed by the daemon's admission gate (`busy`).
    pub serve_shed: u64,
    /// Requests rejected for an expired deadline.
    pub serve_deadline_expired: u64,
    /// Client-side retry attempts.
    pub serve_retries: u64,
    /// Cache entries recovered from the journal at daemon startup.
    pub serve_recovered_entries: u64,
    /// Executor rebuilds after a poisoned lock.
    pub serve_rebuilds: u64,
    /// Protocol requests by operation, in [`SERVE_OPS`] order.
    pub serve_requests_by_op: [u64; SERVE_OPS.len()],
    /// Requests that exceeded the daemon's slow-request threshold.
    pub serve_slow_requests: u64,
    /// Per-phase timing, in [`PhaseKind::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
    /// Per-slot totals, for slots that have seen any activity.
    pub workers: Vec<WorkerSnapshot>,
}

/// Takes a snapshot of every live counter.
pub fn snapshot() -> TelemetrySnapshot {
    let elapsed = epoch().elapsed();
    let bounds = phase_bounds();
    let phases = PhaseKind::ALL
        .iter()
        .map(|&phase| {
            let mut counts = vec![0u64; PHASE_BUCKETS + 1];
            let mut total_ns = 0u64;
            let mut samples = 0u64;
            for slot in &SLOTS {
                let clock = &slot.phases[phase.index()];
                total_ns += clock.total_ns.load(Relaxed);
                samples += clock.samples.load(Relaxed);
                for (acc, bucket) in counts.iter_mut().zip(&clock.buckets) {
                    *acc += bucket.load(Relaxed);
                }
            }
            PhaseSnapshot {
                phase,
                total_ns,
                samples,
                hist: Histogram::from_parts(bounds.clone(), counts, total_ns as f64),
            }
        })
        .collect();
    let workers: Vec<WorkerSnapshot> = SLOTS
        .iter()
        .enumerate()
        .map(|(index, slot)| WorkerSnapshot {
            index,
            trials: slot.trials.load(Relaxed),
            routes: slot.routes.load(Relaxed),
            batches: slot.batches.load(Relaxed),
            cache_hits: slot.cache_hits.load(Relaxed),
            build_reused: slot.build_reused.load(Relaxed),
            busy_ns: slot.busy_ns(),
        })
        .filter(|w| {
            w.trials + w.routes + w.batches + w.cache_hits + w.build_reused + w.busy_ns > 0
        })
        .collect();
    TelemetrySnapshot {
        elapsed,
        trials: workers.iter().map(|w| w.trials).sum(),
        routes: workers.iter().map(|w| w.routes).sum(),
        batches: workers.iter().map(|w| w.batches).sum(),
        cache_hits: workers.iter().map(|w| w.cache_hits).sum(),
        build_reused: workers.iter().map(|w| w.build_reused).sum(),
        expected_trials: EXPECTED_TRIALS.load(Relaxed),
        expected_points: EXPECTED_POINTS.load(Relaxed),
        points_done: POINTS_DONE.load(Relaxed),
        points_cached: POINTS_CACHED.load(Relaxed),
        serve_shed: SERVE_SHED.load(Relaxed),
        serve_deadline_expired: SERVE_DEADLINE_EXPIRED.load(Relaxed),
        serve_retries: SERVE_RETRIES.load(Relaxed),
        serve_recovered_entries: SERVE_RECOVERED.load(Relaxed),
        serve_rebuilds: SERVE_REBUILDS.load(Relaxed),
        serve_requests_by_op: std::array::from_fn(|i| SERVE_REQUESTS[i].load(Relaxed)),
        serve_slow_requests: SERVE_SLOW.load(Relaxed),
        phases,
        workers,
    }
}

/// Content type an HTTP endpoint should declare when serving
/// [`exposition`] (the Prometheus text format version string).
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Content type an HTTP endpoint should declare when serving
/// [`snapshot_json`].
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// The current telemetry state in Prometheus text exposition format —
/// a one-call body for an HTTP `GET /metrics` handler (pair it with
/// [`EXPOSITION_CONTENT_TYPE`]).
pub fn exposition() -> String {
    snapshot().to_exposition()
}

/// The current telemetry state as one JSON object — a one-call
/// progress/health body for an HTTP endpoint (pair it with
/// [`JSON_CONTENT_TYPE`]). Same keys as the JSONL reporter sink.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// The rate-of-change view between two snapshots of a monotone counter
/// set: what a progress line actually displays.
#[derive(Debug, Clone)]
pub struct TelemetryDelta {
    /// Wall-clock seconds between the snapshots.
    pub seconds: f64,
    /// Trials completed in the window.
    pub trials: u64,
    /// Routes completed in the window.
    pub routes: u64,
    /// Completed trials per second over the window (0 when the window
    /// is empty).
    pub trials_per_sec: f64,
    /// Worker slots that did any phase work in the window.
    pub workers_active: usize,
    /// Busy fraction of the active workers over the window, in `[0, 1]`.
    pub utilization: f64,
}

impl TelemetrySnapshot {
    /// Total busy nanoseconds across workers.
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// The change from `earlier` (an older snapshot of the same
    /// process) to `self`, as rates.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetryDelta {
        let seconds = (self.elapsed.saturating_sub(earlier.elapsed)).as_secs_f64();
        let trials = self.trials.saturating_sub(earlier.trials);
        let busy: u64 = self
            .workers
            .iter()
            .map(|w| {
                let before = earlier
                    .workers
                    .iter()
                    .find(|e| e.index == w.index)
                    .map_or(0, |e| e.busy_ns);
                w.busy_ns.saturating_sub(before)
            })
            .sum();
        let workers_active = self
            .workers
            .iter()
            .filter(|w| {
                let before = earlier
                    .workers
                    .iter()
                    .find(|e| e.index == w.index)
                    .map_or(0, |e| e.busy_ns);
                w.busy_ns > before
            })
            .count();
        let utilization = if seconds > 0.0 && workers_active > 0 {
            (busy as f64 / 1e9 / (seconds * workers_active as f64)).min(1.0)
        } else {
            0.0
        };
        TelemetryDelta {
            seconds,
            trials,
            routes: self.routes.saturating_sub(earlier.routes),
            trials_per_sec: if seconds > 0.0 {
                trials as f64 / seconds
            } else {
                0.0
            },
            workers_active,
            utilization,
        }
    }

    /// One human-readable progress line (no trailing newline): points,
    /// trials, rate, utilization, cache hits, ETA.
    pub fn progress_line(&self, delta: &TelemetryDelta) -> String {
        let mut line = String::from("[sos]");
        if self.expected_points > 0 {
            line.push_str(&format!(
                " points {}/{}",
                self.points_done, self.expected_points
            ));
        }
        if self.expected_trials > 0 {
            line.push_str(&format!(
                " · trials {}/{}",
                self.trials, self.expected_trials
            ));
        } else {
            line.push_str(&format!(" · trials {}", self.trials));
        }
        line.push_str(&format!(" · {:.0}/s", delta.trials_per_sec));
        line.push_str(&format!(
            " · workers {} @ {:.0}%",
            delta.workers_active,
            delta.utilization * 100.0
        ));
        if self.cache_hits > 0 {
            line.push_str(&format!(" · cache {}", self.cache_hits));
        }
        let remaining = self.expected_trials.saturating_sub(self.trials);
        if remaining > 0 && delta.trials_per_sec > 0.0 {
            line.push_str(&format!(
                " · eta {}",
                fmt_secs(remaining as f64 / delta.trials_per_sec)
            ));
        }
        line
    }

    /// The `sos profile` table: per-phase self time, share of busy
    /// (phase-attributed) time, p50/p95/p99 lap durations, then run
    /// totals — including build-memo reuse — and per-worker rates. Pure
    /// text — no terminal control sequences.
    pub fn profile_table(&self) -> String {
        let mut out = String::new();
        // The phase clocks partition busy time, so "share of measured"
        // *is* share-of-busy.
        let busy: u64 = self.phases.iter().map(|p| p.total_ns).sum();
        out.push_str(&format!(
            "{:<12} {:>10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "phase", "self-time", "%busy", "p50", "p95", "p99", "samples"
        ));
        for p in &self.phases {
            let pct = if busy > 0 {
                p.total_ns as f64 * 100.0 / busy as f64
            } else {
                0.0
            };
            let q = |q: f64| {
                p.hist
                    .quantile(q)
                    .map_or_else(|| String::from("-"), fmt_ns)
            };
            out.push_str(&format!(
                "{:<12} {:>10} {:>6.1}% {:>10} {:>10} {:>10} {:>10}\n",
                p.phase.label(),
                fmt_ns(p.total_ns as f64),
                pct,
                q(0.50),
                q(0.95),
                q(0.99),
                p.samples
            ));
        }
        out.push_str(&format!(
            "measured {} over {} wall ({} workers)\n",
            fmt_ns(busy as f64),
            fmt_secs(self.elapsed.as_secs_f64()),
            self.workers.len()
        ));
        let wall = self.elapsed.as_secs_f64();
        let rate = if wall > 0.0 {
            self.trials as f64 / wall
        } else {
            0.0
        };
        out.push_str(&format!(
            "trials {} ({:.0}/s) · routes {} · batches {}",
            self.trials, rate, self.routes, self.batches
        ));
        if self.build_reused > 0 {
            let share = if self.trials > 0 {
                self.build_reused as f64 * 100.0 / self.trials as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                " · builds reused {} ({share:.0}% of trials)",
                self.build_reused
            ));
        }
        if self.expected_points > 0 {
            out.push_str(&format!(
                " · sweep points {}/{} ({} cached)",
                self.points_done, self.expected_points, self.points_cached
            ));
        }
        out.push('\n');
        for w in &self.workers {
            let busy = w.busy_ns as f64 / 1e9;
            let per_sec = if busy > 0.0 {
                w.trials as f64 / busy
            } else {
                0.0
            };
            out.push_str(&format!(
                "  worker {:>2}: {:>8} trials ({:>6.0}/s busy) · {:>9} routes · {:>5} batches · busy {}\n",
                w.index,
                w.trials,
                per_sec,
                w.routes,
                w.batches,
                fmt_secs(busy)
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON object (one JSONL line without
    /// the trailing newline). Hand-rolled like every sink in this crate;
    /// keys are stable and documented in EXPERIMENTS.md.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"elapsed_s\":{:.6}", self.elapsed.as_secs_f64()));
        s.push_str(&format!(",\"trials\":{}", self.trials));
        s.push_str(&format!(",\"expected_trials\":{}", self.expected_trials));
        s.push_str(&format!(",\"routes\":{}", self.routes));
        s.push_str(&format!(",\"batches\":{}", self.batches));
        s.push_str(&format!(",\"cache_hits\":{}", self.cache_hits));
        s.push_str(&format!(",\"build_reused\":{}", self.build_reused));
        s.push_str(&format!(",\"points_done\":{}", self.points_done));
        s.push_str(&format!(",\"points_total\":{}", self.expected_points));
        s.push_str(&format!(",\"points_cached\":{}", self.points_cached));
        s.push_str(&format!(",\"serve_shed\":{}", self.serve_shed));
        s.push_str(&format!(
            ",\"serve_deadline_expired\":{}",
            self.serve_deadline_expired
        ));
        s.push_str(&format!(",\"serve_retries\":{}", self.serve_retries));
        s.push_str(&format!(
            ",\"serve_recovered_entries\":{}",
            self.serve_recovered_entries
        ));
        s.push_str(&format!(",\"serve_rebuilds\":{}", self.serve_rebuilds));
        s.push_str(",\"serve_requests\":{");
        for (i, op) in SERVE_OPS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{op}\":{}", self.serve_requests_by_op[i]));
        }
        s.push('}');
        s.push_str(&format!(
            ",\"serve_slow_requests\":{}",
            self.serve_slow_requests
        ));
        s.push_str(&format!(",\"workers\":{}", self.workers.len()));
        s.push_str(&format!(",\"busy_ns\":{}", self.busy_ns()));
        s.push_str(",\"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let q = |q: f64| p.hist.quantile(q).unwrap_or(0.0);
            s.push_str(&format!(
                "\"{}\":{{\"total_ns\":{},\"samples\":{},\"p50_ns\":{:.0},\"p95_ns\":{:.0},\"p99_ns\":{:.0}}}",
                json_key(p.phase),
                p.total_ns,
                p.samples,
                q(0.50),
                q(0.95),
                q(0.99)
            ));
        }
        s.push_str("}}");
        s
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`# HELP`/`# TYPE` comments plus one sample per line).
    pub fn to_exposition(&self) -> String {
        let mut s = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            s.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter("sos_trials_total", "Trials completed.", self.trials);
        counter("sos_routes_total", "Client messages routed.", self.routes);
        counter(
            "sos_batches_total",
            "Trial batches claimed from work-stealing queues.",
            self.batches,
        );
        counter(
            "sos_sweep_cache_hits_total",
            "Sweep points answered from cache/dedup.",
            self.cache_hits,
        );
        counter(
            "sos_sim_build_reused_total",
            "Trials whose overlay build was answered by the engine's build memo.",
            self.build_reused,
        );
        counter(
            "sos_serve_shed_total",
            "Requests shed by the daemon's admission gate.",
            self.serve_shed,
        );
        counter(
            "sos_serve_deadline_expired_total",
            "Requests rejected for an expired deadline.",
            self.serve_deadline_expired,
        );
        counter(
            "sos_serve_retries_total",
            "Client-side retry attempts.",
            self.serve_retries,
        );
        counter(
            "sos_serve_executor_rebuilds_total",
            "Executor rebuilds after a poisoned lock.",
            self.serve_rebuilds,
        );
        counter(
            "sos_serve_slow_requests_total",
            "Requests exceeding the daemon's slow-request threshold.",
            self.serve_slow_requests,
        );
        s.push_str("# HELP sos_serve_requests_total Protocol requests by operation.\n");
        s.push_str("# TYPE sos_serve_requests_total counter\n");
        for (i, op) in SERVE_OPS.iter().enumerate() {
            s.push_str(&format!(
                "sos_serve_requests_total{{op=\"{op}\"}} {}\n",
                self.serve_requests_by_op[i]
            ));
        }
        let mut gauge = |name: &str, help: &str, value: String| {
            s.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "sos_expected_trials",
            "Trials of announced planned work.",
            self.expected_trials.to_string(),
        );
        gauge(
            "sos_sweep_points_total",
            "Sweep points of announced planned work.",
            self.expected_points.to_string(),
        );
        gauge(
            "sos_sweep_points_done",
            "Sweep points completed (executed or cached).",
            self.points_done.to_string(),
        );
        gauge(
            "sos_serve_recovered_entries",
            "Cache entries recovered from the journal at daemon startup.",
            self.serve_recovered_entries.to_string(),
        );
        gauge(
            "sos_workers",
            "Worker slots with recorded activity.",
            self.workers.len().to_string(),
        );
        gauge(
            "sos_elapsed_seconds",
            "Wall clock since the telemetry epoch.",
            format!("{:.6}", self.elapsed.as_secs_f64()),
        );
        s.push_str("# HELP sos_phase_seconds_total Wall clock attributed to each phase.\n");
        s.push_str("# TYPE sos_phase_seconds_total counter\n");
        for p in &self.phases {
            s.push_str(&format!(
                "sos_phase_seconds_total{{phase=\"{}\"}} {:.9}\n",
                p.phase.label(),
                p.total_ns as f64 / 1e9
            ));
        }
        s.push_str("# HELP sos_phase_ns Per-lap phase duration quantiles (ns).\n");
        s.push_str("# TYPE sos_phase_ns summary\n");
        for p in &self.phases {
            for q in [0.5, 0.95, 0.99] {
                s.push_str(&format!(
                    "sos_phase_ns{{phase=\"{}\",quantile=\"{q}\"}} {:.0}\n",
                    p.phase.label(),
                    p.hist.quantile(q).unwrap_or(0.0)
                ));
            }
            s.push_str(&format!(
                "sos_phase_ns_sum{{phase=\"{}\"}} {}\n",
                p.phase.label(),
                p.total_ns
            ));
            s.push_str(&format!(
                "sos_phase_ns_count{{phase=\"{}\"}} {}\n",
                p.phase.label(),
                p.samples
            ));
        }
        s.push_str("# HELP sos_worker_trials_total Trials completed per worker slot.\n");
        s.push_str("# TYPE sos_worker_trials_total counter\n");
        for w in &self.workers {
            s.push_str(&format!(
                "sos_worker_trials_total{{worker=\"{}\"}} {}\n",
                w.index, w.trials
            ));
        }
        s.push_str("# HELP sos_worker_busy_seconds_total Phase-attributed wall clock per worker slot.\n");
        s.push_str("# TYPE sos_worker_busy_seconds_total counter\n");
        for w in &self.workers {
            s.push_str(&format!(
                "sos_worker_busy_seconds_total{{worker=\"{}\"}} {:.9}\n",
                w.index,
                w.busy_ns as f64 / 1e9
            ));
        }
        s
    }
}

/// JSON object key for a phase (label with `-` → `_`).
fn json_key(phase: PhaseKind) -> &'static str {
    match phase {
        PhaseKind::Build => "build",
        PhaseKind::BreakIn => "break_in",
        PhaseKind::Congestion => "congestion",
        PhaseKind::Routing => "routing",
    }
}

/// Human-readable nanoseconds (`412ns`, `3.1µs`, `12ms`, `4.2s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Human-readable seconds (`12s`, `3m04s`).
fn fmt_secs(secs: f64) -> String {
    if secs < 60.0 {
        format!("{secs:.1}s")
    } else {
        let m = (secs / 60.0).floor();
        format!("{m:.0}m{:02.0}s", secs - m * 60.0)
    }
}

/// Options for [`ProgressReporter::start`].
#[derive(Debug, Clone)]
pub struct ReporterOptions {
    /// Snapshot interval.
    pub interval: Duration,
    /// Render the human-readable progress line to stderr every
    /// interval. When stderr is a terminal the line redraws in place
    /// (`\r`); otherwise one line per interval is printed.
    pub progress: bool,
    /// Optional machine-readable sink. A `.prom`/`.txt` extension gets
    /// the Prometheus text exposition rewritten in place every
    /// interval; anything else gets one JSON snapshot line appended per
    /// interval (JSONL).
    pub out: Option<PathBuf>,
}

impl Default for ReporterOptions {
    fn default() -> Self {
        ReporterOptions {
            interval: Duration::from_millis(500),
            progress: false,
            out: None,
        }
    }
}

/// Shared stop flag + wakeup for the reporter thread.
struct ReporterShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// A background thread that periodically snapshots the telemetry plane
/// and renders progress (stderr) and/or machine-readable snapshots
/// (file). Enables telemetry on start; [`finish`](Self::finish) stops
/// the thread, writes a final snapshot to the sink, and returns it.
pub struct ProgressReporter {
    shared: Arc<ReporterShared>,
    handle: Option<std::thread::JoinHandle<()>>,
    opts: ReporterOptions,
}

/// Writes one snapshot to the configured sink (exposition rewrite or
/// JSONL append, by extension).
fn write_sink(path: &Path, snap: &TelemetrySnapshot) {
    let exposition = matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("prom") | Some("txt")
    );
    let result = if exposition {
        std::fs::write(path, snap.to_exposition())
    } else {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{}", snap.to_json()))
    };
    if let Err(e) = result {
        eprintln!("warning: telemetry sink {}: {e}", path.display());
    }
}

impl ProgressReporter {
    /// Enables telemetry and starts the reporter thread.
    pub fn start(opts: ReporterOptions) -> Self {
        set_enabled(true);
        let shared = Arc::new(ReporterShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = shared.clone();
        let thread_opts = opts.clone();
        let handle = std::thread::Builder::new()
            .name(String::from("sos-telemetry"))
            .spawn(move || reporter_loop(&thread_shared, &thread_opts))
            .expect("spawn telemetry reporter");
        ProgressReporter {
            shared,
            handle: Some(handle),
            opts,
        }
    }

    /// The machine-readable sink path, when one was configured.
    pub fn sink_path(&self) -> Option<PathBuf> {
        self.opts.out.clone()
    }

    /// Stops the reporter, writes the final snapshot to the sink, and
    /// returns it. Telemetry stays enabled (the caller owns the flag).
    pub fn finish(mut self) -> TelemetrySnapshot {
        self.stop_thread();
        let snap = snapshot();
        if let Some(path) = &self.opts.out {
            write_sink(path, &snap);
        }
        if self.opts.progress {
            let delta = snap.since(&snap); // zero-width: totals only
            eprintln!("{}", snap.progress_line(&delta));
        }
        snap
    }

    fn stop_thread(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// The reporter thread body: interval-snapshot-render until stopped.
fn reporter_loop(shared: &ReporterShared, opts: &ReporterOptions) {
    use std::io::IsTerminal;
    let redraw = opts.progress && std::io::stderr().is_terminal();
    let mut prev = snapshot();
    loop {
        let mut stop = shared.stop.lock().unwrap_or_else(|e| e.into_inner());
        while !*stop {
            let (guard, timeout) = shared
                .cv
                .wait_timeout(stop, opts.interval)
                .unwrap_or_else(|e| e.into_inner());
            stop = guard;
            if timeout.timed_out() {
                break;
            }
        }
        if *stop {
            return;
        }
        drop(stop);
        let snap = snapshot();
        let delta = snap.since(&prev);
        if opts.progress {
            if redraw {
                eprint!("\r\x1b[2K{}", snap.progress_line(&delta));
            } else {
                eprintln!("{}", snap.progress_line(&delta));
            }
        }
        if let Some(path) = &opts.out {
            write_sink(path, &snap);
        }
        prev = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; tests that need it on share
    /// this lock so enable/disable windows don't interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_plane_records_nothing_through_guards() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        assert!(slot().is_none());
        let mut timer = PhaseTimer::start();
        let before = snapshot();
        timer.lap(PhaseKind::Build);
        add_expected_trials(10);
        point_done();
        point_cached();
        let after = snapshot();
        assert_eq!(before.expected_trials, after.expected_trials);
        assert_eq!(before.points_done, after.points_done);
        assert_eq!(
            before.phases[0].samples, after.phases[0].samples,
            "disabled timer must not lap"
        );
    }

    #[test]
    fn slots_accumulate_and_snapshot_aggregates() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let before = snapshot();
        let slot = worker();
        slot.add_trial();
        slot.add_routes(25);
        slot.add_batch();
        slot.add_phase_ns(PhaseKind::Routing, 1_500);
        add_expected_trials(4);
        point_done();
        let after = snapshot();
        set_enabled(false);
        assert_eq!(after.trials, before.trials + 1);
        assert_eq!(after.routes, before.routes + 25);
        assert_eq!(after.batches, before.batches + 1);
        assert_eq!(after.expected_trials, before.expected_trials + 4);
        assert_eq!(after.points_done, before.points_done + 1);
        let routing = &after.phases[PhaseKind::Routing.index()];
        let routing_before = &before.phases[PhaseKind::Routing.index()];
        assert_eq!(routing.samples, routing_before.samples + 1);
        assert_eq!(routing.total_ns, routing_before.total_ns + 1_500);
        assert!(after.busy_ns() >= before.busy_ns() + 1_500);
    }

    #[test]
    fn phase_clock_buckets_match_histogram_bounds() {
        // The lock-free bucket index (ceil log2) must agree with what
        // `Histogram::record` would pick over `phase_bounds()` — the
        // snapshot rebuilds a Histogram from the atomic counts.
        let clock = PhaseClock::new();
        let samples = [1u64, 255, 256, 257, 511, 512, 100_000, 1 << 31, (1 << 31) + 1, u64::MAX / 2];
        let mut reference = Histogram::new(phase_bounds());
        for &ns in &samples {
            clock.add(ns);
            reference.record(ns as f64);
        }
        let counts: Vec<u64> = clock.buckets.iter().map(|b| b.load(Relaxed)).collect();
        assert_eq!(counts, reference.bucket_counts());
    }

    #[test]
    fn delta_computes_rates_and_utilization() {
        let base = TelemetrySnapshot {
            elapsed: Duration::from_secs(1),
            trials: 100,
            routes: 1_000,
            batches: 5,
            cache_hits: 0,
            build_reused: 0,
            expected_trials: 1_000,
            expected_points: 4,
            points_done: 1,
            points_cached: 0,
            serve_shed: 0,
            serve_deadline_expired: 0,
            serve_retries: 0,
            serve_recovered_entries: 0,
            serve_rebuilds: 0,
            serve_requests_by_op: [0; SERVE_OPS.len()],
            serve_slow_requests: 0,
            phases: Vec::new(),
            workers: vec![WorkerSnapshot {
                index: 0,
                trials: 100,
                routes: 1_000,
                batches: 5,
                cache_hits: 0,
                build_reused: 0,
                busy_ns: 500_000_000,
            }],
        };
        let mut later = base.clone();
        later.elapsed = Duration::from_secs(3);
        later.trials = 500;
        later.workers[0].trials = 500;
        later.workers[0].busy_ns = 2_100_000_000;
        let delta = later.since(&base);
        assert_eq!(delta.trials, 400);
        assert!((delta.seconds - 2.0).abs() < 1e-9);
        assert!((delta.trials_per_sec - 200.0).abs() < 1e-9);
        assert_eq!(delta.workers_active, 1);
        // 1.6s busy over a 2s single-worker window.
        assert!((delta.utilization - 0.8).abs() < 1e-9);
        let line = later.progress_line(&delta);
        assert!(line.contains("points 1/4"), "{line}");
        assert!(line.contains("trials 500/1000"), "{line}");
        assert!(line.contains("200/s"), "{line}");
        assert!(line.contains("eta"), "{line}");
    }

    #[test]
    fn exposition_and_json_render_all_series() {
        let snap = TelemetrySnapshot {
            elapsed: Duration::from_secs(2),
            trials: 42,
            routes: 840,
            batches: 7,
            cache_hits: 3,
            build_reused: 11,
            expected_trials: 42,
            expected_points: 42,
            points_done: 42,
            points_cached: 3,
            serve_shed: 1,
            serve_deadline_expired: 2,
            serve_retries: 3,
            serve_recovered_entries: 4,
            serve_rebuilds: 5,
            serve_requests_by_op: [9, 8, 7, 6, 5, 4, 3],
            serve_slow_requests: 6,
            phases: PhaseKind::ALL
                .iter()
                .map(|&phase| {
                    let mut hist = Histogram::new(phase_bounds());
                    hist.record(1_000.0);
                    PhaseSnapshot {
                        phase,
                        total_ns: 1_000,
                        samples: 1,
                        hist,
                    }
                })
                .collect(),
            workers: vec![WorkerSnapshot {
                index: 2,
                trials: 42,
                routes: 840,
                batches: 7,
                cache_hits: 3,
                build_reused: 11,
                busy_ns: 4_000,
            }],
        };
        let prom = snap.to_exposition();
        for series in [
            "sos_trials_total 42",
            "sos_routes_total 840",
            "sos_sweep_points_done 42",
            "sos_sweep_cache_hits_total 3",
            "sos_sim_build_reused_total 11",
            "sos_phase_seconds_total{phase=\"build\"}",
            "sos_phase_seconds_total{phase=\"break-in\"}",
            "sos_phase_seconds_total{phase=\"congestion\"}",
            "sos_phase_seconds_total{phase=\"routing\"}",
            "sos_phase_ns{phase=\"routing\",quantile=\"0.99\"}",
            "sos_worker_trials_total{worker=\"2\"} 42",
            "sos_worker_busy_seconds_total{worker=\"2\"}",
            "sos_serve_shed_total 1",
            "sos_serve_deadline_expired_total 2",
            "sos_serve_retries_total 3",
            "sos_serve_recovered_entries 4",
            "sos_serve_executor_rebuilds_total 5",
            "sos_serve_slow_requests_total 6",
            "sos_serve_requests_total{op=\"ping\"} 9",
            "sos_serve_requests_total{op=\"simulate\"} 7",
            "sos_serve_requests_total{op=\"trace\"} 3",
        ] {
            assert!(prom.contains(series), "missing {series} in:\n{prom}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name and value");
            assert!(!name.is_empty(), "bad sample line: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
        let json = snap.to_json();
        for key in [
            "\"trials\":42",
            "\"points_done\":42",
            "\"build_reused\":11",
            "\"serve_shed\":1",
            "\"serve_deadline_expired\":2",
            "\"serve_retries\":3",
            "\"serve_recovered_entries\":4",
            "\"serve_rebuilds\":5",
            "\"serve_requests\":{\"ping\":9",
            "\"simulate\":7",
            "\"serve_slow_requests\":6",
            "\"phases\":{\"build\"",
            "\"p95_ns\"",
            "\"busy_ns\":4000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = snap.profile_table();
        for needle in [
            "phase",
            "build",
            "break-in",
            "congestion",
            "routing",
            "p95",
            "worker  2",
            "builds reused 11",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn reporter_writes_jsonl_and_exposition_sinks() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("sos-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join(format!("snap-{}.jsonl", std::process::id()));
        let prom = dir.join(format!("snap-{}.prom", std::process::id()));
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&prom);

        let reporter = ProgressReporter::start(ReporterOptions {
            interval: Duration::from_millis(10),
            progress: false,
            out: Some(jsonl.clone()),
        });
        worker().add_trial();
        std::thread::sleep(Duration::from_millis(40));
        let snap = reporter.finish();
        set_enabled(false);
        assert!(snap.trials > 0);
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL: {line}");
            assert!(line.contains("\"trials\""));
        }

        write_sink(&prom, &snap);
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE sos_trials_total counter"));
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&prom);
    }
}
