//! Structured observability for the SOS simulation stack: attack-phase
//! tracing and per-trial metrics.
//!
//! The paper's analysis (Xuan, Chellappan & Wang, ICDCS 2004) divides
//! an intelligent DDoS attempt into phases — break-in trials against
//! the overlay's layers, congestion of known nodes, then client routing
//! through the wreckage. This crate gives each phase a first-class
//! event stream and a metrics vocabulary, without coupling the
//! simulation crates to any output format:
//!
//! - [`event`] — the [`Event`] type and [`EventKind`] taxonomy: one
//!   variant per paper-visible decision point (break-in success or
//!   failure per layer, congestion onset, node repair, route
//!   attempt/delivery, Chord lookup hop counts, Algorithm 1 round
//!   cases).
//! - [`record`] — the [`Recorder`] trait events are emitted through.
//!   [`NullRecorder`] is a no-op whose `enabled()` returns `false`, so
//!   instrumented hot paths skip event construction entirely when
//!   tracing is off.
//! - [`metrics`] — [`Counter`], [`Gauge`], and fixed-bucket
//!   [`Histogram`] primitives plus a named [`MetricsRegistry`], all
//!   with associative `merge` for combining per-worker results.
//! - [`sink`] — renderers over a recorded event slice: JSONL trace
//!   export, CSV metrics summary, and the human-readable per-phase
//!   timeline printed by `sos trace`.
//! - [`telemetry`] — the *live* side: lock-free per-worker runtime
//!   counters and wall-clock phase timers
//!   ([`telemetry::TelemetrySlot`], [`PhaseTimer`]), a snapshot/diff
//!   API, and the background [`ProgressReporter`] behind `--progress`,
//!   `--telemetry-out`, and `sos profile`. Telemetry observes but never
//!   steers: results are bit-identical with it on or off.
//! - [`trace`] — the *request-scoped* side: span guards with
//!   trace/span ids, a bounded [`FlightRecorder`] ring of the last N
//!   completed spans, and Chrome trace-event JSON export (what `sosd`
//!   serves at `GET /debug/trace`). Same contract as telemetry:
//!   observes, never steers.
//!
//! This crate is dependency-free by design (node identifiers are raw
//! `u32`s, JSON is emitted by hand): every simulation crate can depend
//! on it without cycles, and disabling tracing costs one predictable
//! branch per potential event.
//!
//! ```
//! use sos_observe::{Event, EventKind, MemoryRecorder, Phase, Recorder};
//!
//! let recorder = MemoryRecorder::new();
//! if recorder.enabled() {
//!     recorder.record(Event::new(0, 0, EventKind::PhaseStart { phase: Phase::BreakIn }));
//!     recorder.record(Event::new(1, 0, EventKind::BreakInAttempt {
//!         layer: 1,
//!         node: 17,
//!         succeeded: true,
//!     }));
//! }
//! assert_eq!(recorder.take_events().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod telemetry;
pub mod trace;

pub use event::{Event, EventKind, FallbackMode, FaultClass, Phase};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use record::{MemoryRecorder, NullRecorder, Recorder};
pub use sink::{render_timeline, write_jsonl};
pub use telemetry::{
    PhaseKind, PhaseTimer, ProgressReporter, ReporterOptions, TelemetrySnapshot,
};
pub use trace::{FlightRecorder, Span, SpanGuard};
