//! The [`Recorder`] trait and its two built-in implementations.
//!
//! Instrumented code takes `&dyn Recorder` and guards event
//! construction on [`Recorder::enabled`]:
//!
//! ```
//! use sos_observe::{Event, EventKind, NullRecorder, Recorder};
//!
//! fn instrumented(recorder: &dyn Recorder) {
//!     // With NullRecorder this is one always-false branch — the
//!     // event payload is never even built.
//!     if recorder.enabled() {
//!         recorder.record(Event::new(0, 0, EventKind::RouteAttempt { route: 0 }));
//!     }
//! }
//!
//! instrumented(&NullRecorder);
//! ```

use std::sync::Mutex;

use crate::event::Event;

/// A sink for trace events.
///
/// Implementations must be cheap to call and thread-safe (`Sync`):
/// the engine hands one recorder to code running inside its trial
/// loop.
pub trait Recorder: Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Whether events are wanted at all. Call sites use this to skip
    /// building event payloads; the default is `true`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

/// The default recorder: drops everything, reports itself disabled.
///
/// With `NullRecorder`, an instrumented call site costs exactly one
/// predictable branch — this is what keeps tracing zero-overhead when
/// off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _event: Event) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A recorder that buffers every event in memory, in arrival order.
///
/// ```
/// use sos_observe::{Event, EventKind, MemoryRecorder, Recorder};
///
/// let recorder = MemoryRecorder::new();
/// recorder.record(Event::new(3, 1, EventKind::RouteAttempt { route: 0 }));
/// let events = recorder.take_events();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].trial, 1);
/// ```
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Drains and returns everything recorded so far.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().expect("recorder lock poisoned"))
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder lock poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        self.events.lock().expect("recorder lock poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
        NullRecorder.record(Event::new(0, 0, EventKind::RouteAttempt { route: 0 }));
    }

    #[test]
    fn memory_recorder_buffers_in_order() {
        let rec = MemoryRecorder::new();
        assert!(rec.enabled());
        assert!(rec.is_empty());
        for i in 0..5 {
            rec.record(Event::new(i, 0, EventKind::RouteAttempt { route: i }));
        }
        assert_eq!(rec.len(), 5);
        let events = rec.take_events();
        assert!(rec.is_empty());
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn dyn_recorder_is_object_safe() {
        let rec = MemoryRecorder::new();
        let as_dyn: &dyn Recorder = &rec;
        as_dyn.record(Event::new(0, 0, EventKind::RouteAttempt { route: 0 }));
        assert_eq!(rec.len(), 1);
    }
}
