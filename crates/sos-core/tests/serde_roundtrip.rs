//! Round-trip tests for the serializable configuration types — these
//! are what make scenarios and attack configs storable as experiment
//! manifests.

use sos_core::{
    AttackBudget, AttackConfig, CompromiseState, MappingDegree, NodeDistribution,
    Probability, Scenario, SuccessiveParams, SystemParams, Topology,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn probability_round_trips_transparently() {
    let p = Probability::new(0.375).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(json, "0.375", "transparent representation");
    let back: Probability = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
}

#[test]
fn system_params_round_trip() {
    let sys = SystemParams::paper_default();
    let back = round_trip(&sys);
    assert_eq!(back, sys);
}

#[test]
fn attack_configs_round_trip() {
    let configs = [
        AttackConfig::OneBurst {
            budget: AttackBudget::new(100, 2_000),
        },
        AttackConfig::Successive {
            budget: AttackBudget::paper_default(),
            params: SuccessiveParams::paper_default(),
        },
    ];
    for cfg in configs {
        assert_eq!(round_trip(&cfg), cfg);
    }
}

#[test]
fn mapping_degrees_round_trip() {
    for mapping in MappingDegree::paper_named_set() {
        assert_eq!(round_trip(&mapping), mapping);
    }
    let custom = MappingDegree::Custom(vec![1.5, 2.0, 3.0]);
    assert_eq!(round_trip(&custom), custom);
}

#[test]
fn distributions_round_trip() {
    for dist in [
        NodeDistribution::Even,
        NodeDistribution::Increasing,
        NodeDistribution::Decreasing,
        NodeDistribution::Custom(vec![1.0, 2.0]),
    ] {
        assert_eq!(round_trip(&dist), dist);
    }
}

#[test]
fn full_scenario_round_trips_and_stays_valid() {
    let scenario = Scenario::builder()
        .system(SystemParams::paper_default())
        .layers(4)
        .distribution(NodeDistribution::Increasing)
        .mapping(MappingDegree::OneTo(5))
        .filters(10)
        .build()
        .unwrap();
    let back: Scenario = round_trip(&scenario);
    assert_eq!(back, scenario);
    // The deserialized scenario still satisfies the invariants the
    // builder enforced.
    assert_eq!(back.topology().total_sos_nodes(), back.system().sos_nodes());
}

#[test]
fn topology_round_trip() {
    let topo = Topology::builder()
        .layer_sizes(vec![40, 30, 30])
        .mapping(MappingDegree::OneToHalf)
        .filters(12)
        .build()
        .unwrap();
    let back: Topology = round_trip(&topo);
    assert_eq!(back, topo);
    assert_eq!(back.degree(1), 20.0);
}

#[test]
fn compromise_state_round_trip() {
    let topo = Topology::builder()
        .layer_sizes(vec![10, 10])
        .mapping(MappingDegree::ONE_TO_ONE)
        .filters(5)
        .build()
        .unwrap();
    let state = CompromiseState::from_counts(
        &topo,
        vec![1.0, 2.0, 0.0],
        vec![3.0, 0.5, 1.0],
    );
    let back: CompromiseState = round_trip(&state);
    assert_eq!(back, state);
    assert_eq!(back.bad(1), 4.0);
}

#[test]
fn scenario_json_is_human_auditable() {
    // The manifest format should carry recognizable field names.
    let scenario = Scenario::builder()
        .system(SystemParams::paper_default())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .build()
        .unwrap();
    let json = serde_json::to_string_pretty(&scenario).unwrap();
    for needle in ["overlay_nodes", "sos_nodes", "layer_sizes", "filter_count"] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
