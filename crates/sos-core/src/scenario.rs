//! A complete, validated experiment scenario: system parameters plus
//! topology.

use crate::distribution::NodeDistribution;
use crate::error::ConfigError;
use crate::mapping::MappingDegree;
use crate::params::SystemParams;
use crate::topology::{Topology, TopologyBuilder, DEFAULT_FILTER_COUNT};
use serde::{Deserialize, Serialize};

/// System parameters and topology, validated for mutual consistency
/// (`Σ n_i == n`, `n ≤ N`).
///
/// Filters are *not* counted in the overlay population `N`: the paper
/// treats them as special infrastructure that cannot be broken into and
/// can only be congested upon disclosure.
///
/// # Example
///
/// ```
/// use sos_core::{MappingDegree, NodeDistribution, Scenario, SystemParams};
///
/// let scenario = Scenario::builder()
///     .system(SystemParams::paper_default())
///     .layers(4)
///     .distribution(NodeDistribution::Increasing)
///     .mapping(MappingDegree::OneTo(5))
///     .build()?;
/// assert_eq!(scenario.topology().layer_count(), 4);
/// assert_eq!(scenario.topology().total_sos_nodes(), 100);
/// # Ok::<(), sos_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    system: SystemParams,
    topology: Topology,
}

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Creates a scenario from already-built parts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::LayerSizeMismatch`] when the topology's SOS
    /// node total differs from `system.sos_nodes()`.
    pub fn new(system: SystemParams, topology: Topology) -> Result<Self, ConfigError> {
        if topology.total_sos_nodes() != system.sos_nodes() {
            return Err(ConfigError::LayerSizeMismatch {
                layer_total: topology.total_sos_nodes(),
                sos_nodes: system.sos_nodes(),
            });
        }
        Ok(Scenario { system, topology })
    }

    /// System-side parameters.
    pub fn system(&self) -> &SystemParams {
        &self.system
    }

    /// The layered topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    system: Option<SystemParams>,
    layers: Option<usize>,
    distribution: NodeDistributionOpt,
    explicit_sizes: Option<Vec<u64>>,
    mapping: Option<MappingDegree>,
    filters: Option<u64>,
}

#[derive(Debug, Clone)]
struct NodeDistributionOpt(NodeDistribution);

impl Default for NodeDistributionOpt {
    fn default() -> Self {
        NodeDistributionOpt(NodeDistribution::Even)
    }
}

impl ScenarioBuilder {
    /// Sets the system parameters (required).
    pub fn system(mut self, system: SystemParams) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the number of layers `L` (required unless
    /// [`layer_sizes`](Self::layer_sizes) is used).
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Sets the node-distribution policy (default
    /// [`NodeDistribution::Even`]).
    pub fn distribution(mut self, distribution: NodeDistribution) -> Self {
        self.distribution = NodeDistributionOpt(distribution);
        self
    }

    /// Sets explicit layer sizes, overriding `layers`/`distribution`.
    pub fn layer_sizes(mut self, sizes: Vec<u64>) -> Self {
        self.explicit_sizes = Some(sizes);
        self
    }

    /// Sets the mapping-degree policy (required).
    pub fn mapping(mut self, mapping: MappingDegree) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Sets the filter count (default [`DEFAULT_FILTER_COUNT`]).
    pub fn filters(mut self, filters: u64) -> Self {
        self.filters = Some(filters);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from topology construction, plus
    /// [`ConfigError::MissingField`] for unset required fields.
    pub fn build(self) -> Result<Scenario, ConfigError> {
        let system = self.system.ok_or(ConfigError::MissingField { name: "system" })?;
        let mapping = self.mapping.ok_or(ConfigError::MissingField { name: "mapping" })?;
        let mut tb: TopologyBuilder = Topology::builder()
            .mapping(mapping)
            .filters(self.filters.unwrap_or(DEFAULT_FILTER_COUNT));
        tb = if let Some(sizes) = self.explicit_sizes {
            tb.layer_sizes(sizes)
        } else {
            let layers = self.layers.ok_or(ConfigError::MissingField {
                name: "layers or layer_sizes",
            })?;
            tb.distribute(system.sos_nodes(), layers, self.distribution.0)
        };
        Scenario::new(system, tb.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let s = Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(3)
            .mapping(MappingDegree::OneToAll)
            .build()
            .unwrap();
        assert_eq!(s.system().overlay_nodes(), 10_000);
        assert_eq!(s.topology().layer_count(), 3);
        assert_eq!(s.topology().filter_count(), DEFAULT_FILTER_COUNT);
    }

    #[test]
    fn explicit_sizes_must_match_system() {
        let err = Scenario::builder()
            .system(SystemParams::paper_default())
            .layer_sizes(vec![10, 10])
            .mapping(MappingDegree::ONE_TO_ONE)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::LayerSizeMismatch { .. }));
    }

    #[test]
    fn missing_fields_reported() {
        assert!(matches!(
            Scenario::builder().build(),
            Err(ConfigError::MissingField { name: "system" })
        ));
        assert!(matches!(
            Scenario::builder()
                .system(SystemParams::paper_default())
                .build(),
            Err(ConfigError::MissingField { name: "mapping" })
        ));
        assert!(matches!(
            Scenario::builder()
                .system(SystemParams::paper_default())
                .mapping(MappingDegree::ONE_TO_ONE)
                .build(),
            Err(ConfigError::MissingField { .. })
        ));
    }

    #[test]
    fn distribution_is_applied() {
        let s = Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(4)
            .distribution(NodeDistribution::Decreasing)
            .mapping(MappingDegree::ONE_TO_ONE)
            .build()
            .unwrap();
        let sizes = s.topology().layer_sizes();
        assert_eq!(sizes[0], 25);
        assert!(sizes[1] > sizes[3]);
    }
}
