//! The generalized SOS topology: layers, filters and mapping degrees.

use crate::distribution::NodeDistribution;
use crate::error::ConfigError;
use crate::mapping::MappingDegree;
use serde::{Deserialize, Serialize};

/// Default number of filters used throughout the paper's evaluation.
pub const DEFAULT_FILTER_COUNT: u64 = 10;

/// A validated generalized SOS topology.
///
/// Layers are 1-based as in the paper: layers `1..=L` hold SOS nodes and
/// layer `L+1` is the filter ring around the target. The *boundary* `i`
/// (also 1-based) is the hop from layer `i−1` into layer `i`, where layer
/// `0` is the client population; its mapping degree is `m_i`.
///
/// # Example
///
/// ```
/// use sos_core::{MappingDegree, NodeDistribution, Topology};
///
/// let topo = Topology::builder()
///     .layer_sizes(vec![34, 33, 33])
///     .mapping(MappingDegree::OneTo(2))
///     .filters(10)
///     .build()?;
/// assert_eq!(topo.layer_count(), 3);
/// assert_eq!(topo.size_of_layer(4), 10);   // the filter layer
/// assert_eq!(topo.degree(2), 2.0);          // m_2
/// # Ok::<(), sos_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    layer_sizes: Vec<u64>,
    filter_count: u64,
    /// `m_1..=m_{L+1}`, indexed by boundary − 1.
    degrees: Vec<f64>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new()
    }

    /// Number of SOS layers `L` (excluding the filter layer).
    pub fn layer_count(&self) -> usize {
        self.layer_sizes.len()
    }

    /// SOS layer sizes `n_1..n_L`.
    pub fn layer_sizes(&self) -> &[u64] {
        &self.layer_sizes
    }

    /// Number of filters `n_{L+1}`.
    pub fn filter_count(&self) -> u64 {
        self.filter_count
    }

    /// Total SOS nodes `n = Σ n_i` (filters excluded).
    pub fn total_sos_nodes(&self) -> u64 {
        self.layer_sizes.iter().sum()
    }

    /// Size of 1-based layer `i`, where `i = L+1` addresses the filters.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or `i > L+1`.
    pub fn size_of_layer(&self, i: usize) -> u64 {
        assert!(i >= 1, "layers are 1-based");
        let l = self.layer_count();
        if i <= l {
            self.layer_sizes[i - 1]
        } else if i == l + 1 {
            self.filter_count
        } else {
            panic!("layer {i} out of range (L = {l})");
        }
    }

    /// Mapping degree `m_i` for 1-based boundary `i` in `1..=L+1`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn degree(&self, i: usize) -> f64 {
        assert!(
            (1..=self.degrees.len()).contains(&i),
            "boundary {i} out of range (1..={})",
            self.degrees.len()
        );
        self.degrees[i - 1]
    }

    /// All mapping degrees `m_1..=m_{L+1}`.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Iterator over `(boundary, layer_size, degree)` triples for
    /// boundaries `1..=L+1` — the shape the per-layer equations consume.
    pub fn boundaries(&self) -> impl Iterator<Item = (usize, u64, f64)> + '_ {
        (1..=self.layer_count() + 1)
            .map(move |i| (i, self.size_of_layer(i), self.degree(i)))
    }
}

/// Builder for [`Topology`] (see type-level docs).
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    layer_sizes: Option<Vec<u64>>,
    sos_nodes_and_distribution: Option<(u64, usize, NodeDistribution)>,
    filter_count: Option<u64>,
    mapping: Option<MappingDegree>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets explicit layer sizes `n_1..n_L` (alternative to
    /// [`distribute`](Self::distribute)).
    pub fn layer_sizes(mut self, sizes: Vec<u64>) -> Self {
        self.layer_sizes = Some(sizes);
        self
    }

    /// Derives layer sizes by spreading `sos_nodes` over `layers` layers
    /// with `distribution` (alternative to
    /// [`layer_sizes`](Self::layer_sizes); the later call wins).
    pub fn distribute(
        mut self,
        sos_nodes: u64,
        layers: usize,
        distribution: NodeDistribution,
    ) -> Self {
        self.sos_nodes_and_distribution = Some((sos_nodes, layers, distribution));
        self.layer_sizes = None;
        self
    }

    /// Sets the filter count `n_{L+1}` (default
    /// [`DEFAULT_FILTER_COUNT`]).
    pub fn filters(mut self, count: u64) -> Self {
        self.filter_count = Some(count);
        self
    }

    /// Sets the mapping-degree policy (required).
    pub fn mapping(mut self, mapping: MappingDegree) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Validates and builds the topology.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::MissingField`] if neither layer sizes nor a
    ///   distribution, or no mapping policy, was provided;
    /// * [`ConfigError::EmptyLayer`] if any layer (or the filter ring)
    ///   would be empty;
    /// * errors propagated from [`NodeDistribution::layer_sizes`].
    pub fn build(self) -> Result<Topology, ConfigError> {
        let layer_sizes = match (self.layer_sizes, self.sos_nodes_and_distribution) {
            (Some(sizes), _) => sizes,
            (None, Some((n, l, dist))) => dist.layer_sizes(n, l)?,
            (None, None) => {
                return Err(ConfigError::MissingField {
                    name: "layer_sizes or distribute",
                })
            }
        };
        if layer_sizes.is_empty() {
            return Err(ConfigError::ZeroCount { name: "layers (L)" });
        }
        if let Some(idx) = layer_sizes.iter().position(|&s| s == 0) {
            return Err(ConfigError::EmptyLayer { layer: idx + 1 });
        }
        let filter_count = self.filter_count.unwrap_or(DEFAULT_FILTER_COUNT);
        if filter_count == 0 {
            return Err(ConfigError::ZeroCount {
                name: "filter_count",
            });
        }
        let mapping = self.mapping.ok_or(ConfigError::MissingField { name: "mapping" })?;

        let l = layer_sizes.len();
        let mut degrees = Vec::with_capacity(l + 1);
        for boundary in 1..=l + 1 {
            let size = if boundary <= l {
                layer_sizes[boundary - 1]
            } else {
                filter_count
            };
            let d = mapping.degree_into(size, boundary);
            if d > size as f64 {
                return Err(ConfigError::MappingExceedsLayer {
                    layer: boundary,
                    degree: d,
                    layer_size: size,
                });
            }
            degrees.push(d);
        }
        Ok(Topology {
            layer_sizes,
            filter_count,
            degrees,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo3() -> Topology {
        Topology::builder()
            .layer_sizes(vec![34, 33, 33])
            .mapping(MappingDegree::OneTo(2))
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let t = topo3();
        assert_eq!(t.layer_count(), 3);
        assert_eq!(t.total_sos_nodes(), 100);
        assert_eq!(t.filter_count(), DEFAULT_FILTER_COUNT);
        assert_eq!(t.size_of_layer(1), 34);
        assert_eq!(t.size_of_layer(3), 33);
        assert_eq!(t.size_of_layer(4), 10);
        assert_eq!(t.degrees().len(), 4);
    }

    #[test]
    fn boundaries_iterator_covers_filters() {
        let t = topo3();
        let bs: Vec<_> = t.boundaries().collect();
        assert_eq!(bs.len(), 4);
        assert_eq!(bs[0], (1, 34, 2.0));
        assert_eq!(bs[3], (4, 10, 2.0));
    }

    #[test]
    fn distribute_matches_distribution_policy() {
        let t = Topology::builder()
            .distribute(100, 4, NodeDistribution::Even)
            .mapping(MappingDegree::ONE_TO_ONE)
            .build()
            .unwrap();
        assert_eq!(t.layer_sizes(), &[25, 25, 25, 25]);
    }

    #[test]
    fn one_to_all_degrees_track_layer_sizes() {
        let t = Topology::builder()
            .layer_sizes(vec![40, 30, 30])
            .mapping(MappingDegree::OneToAll)
            .filters(10)
            .build()
            .unwrap();
        assert_eq!(t.degree(1), 40.0);
        assert_eq!(t.degree(2), 30.0);
        assert_eq!(t.degree(4), 10.0);
    }

    #[test]
    fn one_to_half_degrees_may_be_fractional() {
        let t = Topology::builder()
            .layer_sizes(vec![33])
            .mapping(MappingDegree::OneToHalf)
            .build()
            .unwrap();
        assert_eq!(t.degree(1), 16.5);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(matches!(
            Topology::builder().mapping(MappingDegree::ONE_TO_ONE).build(),
            Err(ConfigError::MissingField { .. })
        ));
        assert!(matches!(
            Topology::builder().layer_sizes(vec![10]).build(),
            Err(ConfigError::MissingField { name: "mapping" })
        ));
    }

    #[test]
    fn empty_layers_rejected() {
        assert!(matches!(
            Topology::builder()
                .layer_sizes(vec![10, 0, 10])
                .mapping(MappingDegree::ONE_TO_ONE)
                .build(),
            Err(ConfigError::EmptyLayer { layer: 2 })
        ));
        assert!(matches!(
            Topology::builder()
                .layer_sizes(vec![])
                .mapping(MappingDegree::ONE_TO_ONE)
                .build(),
            Err(ConfigError::ZeroCount { .. })
        ));
    }

    #[test]
    fn zero_filters_rejected() {
        assert!(matches!(
            Topology::builder()
                .layer_sizes(vec![10])
                .filters(0)
                .mapping(MappingDegree::ONE_TO_ONE)
                .build(),
            Err(ConfigError::ZeroCount { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn size_of_layer_out_of_range_panics() {
        topo3().size_of_layer(5);
    }

    #[test]
    fn custom_mapping_with_explicit_boundaries() {
        let t = Topology::builder()
            .layer_sizes(vec![20, 20])
            .filters(10)
            .mapping(MappingDegree::Custom(vec![3.0, 4.0, 5.0]))
            .build()
            .unwrap();
        assert_eq!(t.degree(1), 3.0);
        assert_eq!(t.degree(2), 4.0);
        assert_eq!(t.degree(3), 5.0);
    }
}
