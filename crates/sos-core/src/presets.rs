//! Named presets: the paper's configurations and a standard threat
//! catalogue.
//!
//! The same handful of configurations appears in the figures, the
//! examples, the CLI and the optimizer; defining them once keeps every
//! consumer literally on the same numbers.

use crate::mapping::MappingDegree;
use crate::params::{AttackBudget, AttackConfig, SuccessiveParams, SystemParams};
use crate::scenario::Scenario;
use crate::ConfigError;

/// The paper's default 3-layer scenario with the given mapping
/// (`N=10000, n=100, P_B=0.5`, 10 filters, even distribution).
///
/// # Errors
///
/// Propagates configuration errors (none for the named mappings).
pub fn paper_scenario(mapping: MappingDegree) -> Result<Scenario, ConfigError> {
    Scenario::builder()
        .system(SystemParams::paper_default())
        .layers(3)
        .mapping(mapping)
        .filters(10)
        .build()
}

/// The original SOS architecture as a scenario: 3 layers, one-to-all.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn original_sos_scenario() -> Result<Scenario, ConfigError> {
    paper_scenario(MappingDegree::OneToAll)
}

/// A named adversary from the standard threat catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreatPreset {
    /// Pure congestion flood, moderate (`N_T=0, N_C=2000`) — the
    /// original SOS paper's attack model at Fig-4(a) intensity.
    ModerateFlooder,
    /// Pure congestion flood, heavy (`N_T=0, N_C=6000`).
    HeavyFlooder,
    /// The paper's default intelligent attacker
    /// (`N_T=200, N_C=2000, R=3, P_E=0.2`).
    PaperIntelligent,
    /// A patient, break-in-heavy intruder
    /// (`N_T=2000, N_C=1000, R=5, P_E=0.2`).
    PatientIntruder,
    /// A balanced adversary (`N_T=500, N_C=3000, R=3, P_E=0.1`).
    Balanced,
}

impl ThreatPreset {
    /// Every preset, in catalogue order.
    pub const ALL: [ThreatPreset; 5] = [
        ThreatPreset::ModerateFlooder,
        ThreatPreset::HeavyFlooder,
        ThreatPreset::PaperIntelligent,
        ThreatPreset::PatientIntruder,
        ThreatPreset::Balanced,
    ];

    /// Stable label for CSV output and CLI parsing.
    pub fn label(&self) -> &'static str {
        match self {
            ThreatPreset::ModerateFlooder => "moderate-flooder",
            ThreatPreset::HeavyFlooder => "heavy-flooder",
            ThreatPreset::PaperIntelligent => "paper-intelligent",
            ThreatPreset::PatientIntruder => "patient-intruder",
            ThreatPreset::Balanced => "balanced",
        }
    }

    /// Parses a label produced by [`label`](Self::label).
    pub fn parse(label: &str) -> Option<ThreatPreset> {
        ThreatPreset::ALL.into_iter().find(|p| p.label() == label)
    }

    /// The attack configuration for this preset, with budgets capped at
    /// the overlay population so presets stay valid on scaled-down
    /// systems.
    pub fn attack(&self, system: &SystemParams) -> AttackConfig {
        let n = system.overlay_nodes();
        let cap = |v: u64| v.min(n);
        match self {
            ThreatPreset::ModerateFlooder => AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(cap(2_000)),
            },
            ThreatPreset::HeavyFlooder => AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(cap(6_000)),
            },
            ThreatPreset::PaperIntelligent => AttackConfig::Successive {
                budget: AttackBudget::new(cap(200), cap(2_000)),
                params: SuccessiveParams::paper_default(),
            },
            ThreatPreset::PatientIntruder => AttackConfig::Successive {
                budget: AttackBudget::new(cap(2_000), cap(1_000)),
                params: SuccessiveParams::new(5, 0.2).expect("static parameters valid"),
            },
            ThreatPreset::Balanced => AttackConfig::Successive {
                budget: AttackBudget::new(cap(500), cap(3_000)),
                params: SuccessiveParams::new(3, 0.1).expect("static parameters valid"),
            },
        }
    }
}

impl std::fmt::Display for ThreatPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_defaults() {
        let s = paper_scenario(MappingDegree::OneTo(2)).unwrap();
        assert_eq!(s.system().overlay_nodes(), 10_000);
        assert_eq!(s.topology().layer_count(), 3);
        assert_eq!(s.topology().filter_count(), 10);
    }

    #[test]
    fn original_sos_is_one_to_all() {
        let s = original_sos_scenario().unwrap();
        assert_eq!(s.topology().degree(1), 34.0);
        assert_eq!(s.topology().degree(4), 10.0);
    }

    #[test]
    fn labels_round_trip() {
        for preset in ThreatPreset::ALL {
            assert_eq!(ThreatPreset::parse(preset.label()), Some(preset));
            assert_eq!(preset.to_string(), preset.label());
        }
        assert_eq!(ThreatPreset::parse("nonsense"), None);
    }

    #[test]
    fn budgets_capped_for_small_systems() {
        let tiny = SystemParams::new(500, 50, 0.5).unwrap();
        for preset in ThreatPreset::ALL {
            let budget = preset.attack(&tiny).budget();
            assert!(budget.break_in_trials <= 500, "{preset}");
            assert!(budget.congestion_capacity <= 500, "{preset}");
        }
    }

    #[test]
    fn flooders_have_no_break_in() {
        let sys = SystemParams::paper_default();
        for preset in [ThreatPreset::ModerateFlooder, ThreatPreset::HeavyFlooder] {
            assert_eq!(preset.attack(&sys).budget().break_in_trials, 0);
            assert!(matches!(
                preset.attack(&sys),
                AttackConfig::OneBurst { .. }
            ));
        }
    }
}
