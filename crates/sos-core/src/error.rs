//! Configuration error type shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors raised when building or validating an SOS configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A probability parameter fell outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter (e.g. `"P_B"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The number of SOS nodes exceeds the overlay population.
    SosExceedsOverlay {
        /// SOS node count `n`.
        sos_nodes: u64,
        /// Overlay population `N`.
        overlay_nodes: u64,
    },
    /// A structural count that must be positive was zero.
    ZeroCount {
        /// Name of the offending parameter (e.g. `"layers"`).
        name: &'static str,
    },
    /// The per-layer sizes do not sum to the declared SOS node count.
    LayerSizeMismatch {
        /// Sum of the provided layer sizes.
        layer_total: u64,
        /// Declared SOS node count.
        sos_nodes: u64,
    },
    /// A layer was assigned zero nodes, which would disconnect the overlay.
    EmptyLayer {
        /// 1-based index of the empty layer.
        layer: usize,
    },
    /// A mapping degree exceeds the size of the layer it maps into.
    MappingExceedsLayer {
        /// 1-based index of the target layer.
        layer: usize,
        /// Requested degree.
        degree: f64,
        /// Size of the target layer.
        layer_size: u64,
    },
    /// A custom weight vector had the wrong length or invalid entries.
    InvalidWeights {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// Attack parameters are inconsistent with the system parameters.
    InvalidAttack {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A required builder field was never set.
    MissingField {
        /// Name of the field.
        name: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidProbability { name, value } => {
                write!(f, "probability {name} = {value} is outside [0, 1]")
            }
            ConfigError::SosExceedsOverlay {
                sos_nodes,
                overlay_nodes,
            } => write!(
                f,
                "SOS node count n = {sos_nodes} exceeds overlay population N = {overlay_nodes}"
            ),
            ConfigError::ZeroCount { name } => {
                write!(f, "{name} must be positive")
            }
            ConfigError::LayerSizeMismatch {
                layer_total,
                sos_nodes,
            } => write!(
                f,
                "layer sizes sum to {layer_total} but n = {sos_nodes} SOS nodes were declared"
            ),
            ConfigError::EmptyLayer { layer } => {
                write!(f, "layer {layer} has no nodes")
            }
            ConfigError::MappingExceedsLayer {
                layer,
                degree,
                layer_size,
            } => write!(
                f,
                "mapping degree m_{layer} = {degree} exceeds the {layer_size} nodes of layer {layer}"
            ),
            ConfigError::InvalidWeights { reason } => {
                write!(f, "invalid distribution weights: {reason}")
            }
            ConfigError::InvalidAttack { reason } => {
                write!(f, "invalid attack parameters: {reason}")
            }
            ConfigError::MissingField { name } => {
                write!(f, "required field `{name}` was not set")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConfigError::InvalidProbability {
            name: "P_B",
            value: 1.5,
        };
        assert!(e.to_string().contains("P_B"));
        assert!(e.to_string().contains("1.5"));

        let e = ConfigError::LayerSizeMismatch {
            layer_total: 90,
            sos_nodes: 100,
        };
        assert!(e.to_string().contains("90"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&ConfigError::ZeroCount { name: "layers" });
    }
}
