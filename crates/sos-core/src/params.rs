//! System and attack parameters.
//!
//! Parameter names follow the paper exactly: `N` (overlay population), `n`
//! (SOS nodes), `P_B` (break-in success probability), `N_T` (break-in
//! budget), `N_C` (congestion budget), `R` (break-in rounds) and `P_E`
//! (fraction of first-layer nodes known a priori).

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// A probability, statically guaranteed to lie in `[0, 1]`.
///
/// # Example
///
/// ```
/// use sos_core::Probability;
/// let p = Probability::new(0.5)?;
/// assert_eq!(p.value(), 0.5);
/// assert!(Probability::new(1.2).is_err());
/// # Ok::<(), sos_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Probability(f64);

impl Probability {
    /// A probability of zero.
    pub const ZERO: Probability = Probability(0.0);
    /// A probability of one.
    pub const ONE: Probability = Probability(1.0);

    /// Validates and wraps a probability value.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidProbability`] when `value` is NaN or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ConfigError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ConfigError::InvalidProbability {
                name: "probability",
                value,
            });
        }
        Ok(Probability(value))
    }

    /// Clamps an arbitrary float into `[0, 1]` (NaN becomes 0).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Probability(0.0)
        } else {
            Probability(value.clamp(0.0, 1.0))
        }
    }

    /// The inner value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Complement `1 − p`.
    pub fn complement(&self) -> Probability {
        Probability(1.0 - self.0)
    }
}

impl std::fmt::Display for Probability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Delegate so precision/width specifiers (`{:.4}`) apply.
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

/// Static system-side parameters: the overlay population, the SOS subset
/// and the per-node break-in success probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    overlay_nodes: u64,
    sos_nodes: u64,
    break_in_probability: Probability,
}

impl SystemParams {
    /// Creates system parameters.
    ///
    /// * `overlay_nodes` — `N`, total overlay population the attacker
    ///   samples from,
    /// * `sos_nodes` — `n`, nodes participating in the SOS architecture,
    /// * `break_in_probability` — `P_B`, probability a break-in attempt on
    ///   a node succeeds.
    ///
    /// # Errors
    ///
    /// Rejects `n > N`, zero counts, and invalid probabilities.
    ///
    /// # Example
    ///
    /// ```
    /// use sos_core::SystemParams;
    /// let sys = SystemParams::new(10_000, 100, 0.5)?;
    /// assert_eq!(sys.overlay_nodes(), 10_000);
    /// # Ok::<(), sos_core::ConfigError>(())
    /// ```
    pub fn new(
        overlay_nodes: u64,
        sos_nodes: u64,
        break_in_probability: f64,
    ) -> Result<Self, ConfigError> {
        if overlay_nodes == 0 {
            return Err(ConfigError::ZeroCount {
                name: "overlay_nodes (N)",
            });
        }
        if sos_nodes == 0 {
            return Err(ConfigError::ZeroCount {
                name: "sos_nodes (n)",
            });
        }
        if sos_nodes > overlay_nodes {
            return Err(ConfigError::SosExceedsOverlay {
                sos_nodes,
                overlay_nodes,
            });
        }
        let p = Probability::new(break_in_probability).map_err(|_| {
            ConfigError::InvalidProbability {
                name: "P_B",
                value: break_in_probability,
            }
        })?;
        Ok(SystemParams {
            overlay_nodes,
            sos_nodes,
            break_in_probability: p,
        })
    }

    /// The paper's default system: `N = 10000`, `n = 100`, `P_B = 0.5`.
    pub fn paper_default() -> Self {
        SystemParams::new(10_000, 100, 0.5).expect("paper defaults are valid")
    }

    /// Total overlay population `N`.
    pub fn overlay_nodes(&self) -> u64 {
        self.overlay_nodes
    }

    /// SOS node count `n`.
    pub fn sos_nodes(&self) -> u64 {
        self.sos_nodes
    }

    /// Break-in success probability `P_B`.
    pub fn break_in_probability(&self) -> Probability {
        self.break_in_probability
    }

    /// Nodes in the overlay that are *not* SOS nodes.
    pub fn non_sos_nodes(&self) -> u64 {
        self.overlay_nodes - self.sos_nodes
    }
}

/// Attacker resources: `N_T` break-in trials and `N_C` congestion slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackBudget {
    /// Number of nodes the attacker can attempt to break into (`N_T`).
    pub break_in_trials: u64,
    /// Number of nodes the attacker can congest (`N_C`).
    pub congestion_capacity: u64,
}

impl AttackBudget {
    /// Creates an attack budget.
    pub fn new(break_in_trials: u64, congestion_capacity: u64) -> Self {
        AttackBudget {
            break_in_trials,
            congestion_capacity,
        }
    }

    /// The paper's successive-model default: `N_T = 200`, `N_C = 2000`.
    pub fn paper_default() -> Self {
        AttackBudget::new(200, 2_000)
    }

    /// A pure congestion attack (`N_T = 0`).
    pub fn congestion_only(congestion_capacity: u64) -> Self {
        AttackBudget::new(0, congestion_capacity)
    }
}

/// Parameters specific to the successive attack model (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessiveParams {
    rounds: u32,
    prior_knowledge: Probability,
}

impl SuccessiveParams {
    /// Creates successive-attack parameters.
    ///
    /// * `rounds` — `R`, the number of break-in rounds (must be ≥ 1),
    /// * `prior_knowledge` — `P_E`, fraction of first-layer nodes the
    ///   attacker knows before the attack.
    ///
    /// # Errors
    ///
    /// Rejects `rounds == 0` and invalid probabilities.
    pub fn new(rounds: u32, prior_knowledge: f64) -> Result<Self, ConfigError> {
        if rounds == 0 {
            return Err(ConfigError::ZeroCount { name: "rounds (R)" });
        }
        let p = Probability::new(prior_knowledge).map_err(|_| {
            ConfigError::InvalidProbability {
                name: "P_E",
                value: prior_knowledge,
            }
        })?;
        Ok(SuccessiveParams {
            rounds,
            prior_knowledge: p,
        })
    }

    /// The paper's default: `R = 3`, `P_E = 0.2`.
    pub fn paper_default() -> Self {
        SuccessiveParams::new(3, 0.2).expect("paper defaults are valid")
    }

    /// Number of break-in rounds `R`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Prior knowledge fraction `P_E`.
    pub fn prior_knowledge(&self) -> Probability {
        self.prior_knowledge
    }
}

/// A full attack description: which model plus its parameters.
///
/// Setting `R = 1, P_E = 0` in [`AttackConfig::Successive`] makes the
/// successive model degenerate into [`AttackConfig::OneBurst`] — a
/// property the analysis crate verifies numerically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackConfig {
    /// §3.1: one round of random break-ins, then congestion; no prior
    /// knowledge.
    OneBurst {
        /// Attacker resources.
        budget: AttackBudget,
    },
    /// §3.2: `R` rounds of disclosure-guided break-ins with prior
    /// knowledge of the first layer, then congestion.
    Successive {
        /// Attacker resources.
        budget: AttackBudget,
        /// Round count and prior knowledge.
        params: SuccessiveParams,
    },
}

impl AttackConfig {
    /// The attack budget regardless of model.
    pub fn budget(&self) -> AttackBudget {
        match self {
            AttackConfig::OneBurst { budget } => *budget,
            AttackConfig::Successive { budget, .. } => *budget,
        }
    }

    /// Human-readable model name.
    pub fn model_name(&self) -> &'static str {
        match self {
            AttackConfig::OneBurst { .. } => "one-burst",
            AttackConfig::Successive { .. } => "successive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.001).is_err());
        assert!(Probability::new(1.001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
    }

    #[test]
    fn probability_clamping() {
        assert_eq!(Probability::clamped(-3.0).value(), 0.0);
        assert_eq!(Probability::clamped(7.0).value(), 1.0);
        assert_eq!(Probability::clamped(f64::NAN).value(), 0.0);
        assert_eq!(Probability::clamped(0.3).value(), 0.3);
    }

    #[test]
    fn probability_complement() {
        let p = Probability::new(0.3).unwrap();
        assert!((p.complement().value() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn system_params_validation() {
        assert!(SystemParams::new(100, 100, 0.5).is_ok());
        assert!(matches!(
            SystemParams::new(100, 101, 0.5),
            Err(ConfigError::SosExceedsOverlay { .. })
        ));
        assert!(matches!(
            SystemParams::new(0, 0, 0.5),
            Err(ConfigError::ZeroCount { .. })
        ));
        assert!(matches!(
            SystemParams::new(100, 10, 1.5),
            Err(ConfigError::InvalidProbability { name: "P_B", .. })
        ));
    }

    #[test]
    fn paper_defaults_match_section_3() {
        let sys = SystemParams::paper_default();
        assert_eq!(sys.overlay_nodes(), 10_000);
        assert_eq!(sys.sos_nodes(), 100);
        assert_eq!(sys.break_in_probability().value(), 0.5);
        assert_eq!(sys.non_sos_nodes(), 9_900);

        let budget = AttackBudget::paper_default();
        assert_eq!(budget.break_in_trials, 200);
        assert_eq!(budget.congestion_capacity, 2_000);

        let succ = SuccessiveParams::paper_default();
        assert_eq!(succ.rounds(), 3);
        assert_eq!(succ.prior_knowledge().value(), 0.2);
    }

    #[test]
    fn successive_params_validation() {
        assert!(matches!(
            SuccessiveParams::new(0, 0.2),
            Err(ConfigError::ZeroCount { .. })
        ));
        assert!(matches!(
            SuccessiveParams::new(3, -0.1),
            Err(ConfigError::InvalidProbability { name: "P_E", .. })
        ));
    }

    #[test]
    fn attack_config_accessors() {
        let one = AttackConfig::OneBurst {
            budget: AttackBudget::new(5, 10),
        };
        assert_eq!(one.budget().break_in_trials, 5);
        assert_eq!(one.model_name(), "one-burst");

        let succ = AttackConfig::Successive {
            budget: AttackBudget::new(7, 11),
            params: SuccessiveParams::paper_default(),
        };
        assert_eq!(succ.budget().congestion_capacity, 11);
        assert_eq!(succ.model_name(), "successive");
    }
}
