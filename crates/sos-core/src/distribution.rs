//! Node-distribution policies: how the `n` SOS nodes are spread over the
//! `L` layers.
//!
//! The paper evaluates three policies in Fig. 6(b):
//!
//! * **even** — every layer gets `n / L`;
//! * **increasing** — the first layer is fixed at `n / L` (to keep load
//!   balance with clients) and the remaining nodes are split over layers
//!   `2..=L` in the ratio `1 : 2 : … : L−1`, so layers closer to the
//!   target are larger;
//! * **decreasing** — first layer fixed at `n / L`, remaining layers in
//!   the ratio `L−1 : L−2 : … : 1`.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use sos_math::sampling::proportional_split;

/// Policy describing how SOS nodes are distributed across layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NodeDistribution {
    /// `n / L` nodes per layer (the paper's default).
    Even,
    /// First layer `n / L`; layers `2..=L` in increasing ratio
    /// `1 : 2 : … : L−1`. Performs best under break-in attacks per the
    /// paper's Fig. 6(b).
    Increasing,
    /// First layer `n / L`; layers `2..=L` in decreasing ratio
    /// `L−1 : … : 1`.
    Decreasing,
    /// Explicit per-layer weights (not necessarily normalized).
    Custom(Vec<f64>),
}

impl NodeDistribution {
    /// Computes concrete integer layer sizes for `sos_nodes` nodes over
    /// `layers` layers. The sizes always sum to exactly `sos_nodes`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroCount`] if `layers == 0` or `sos_nodes == 0`;
    /// * [`ConfigError::InvalidWeights`] if a custom weight vector has the
    ///   wrong length, negative entries, or sums to zero;
    /// * [`ConfigError::EmptyLayer`] if the policy would leave some layer
    ///   without any nodes (e.g. too many layers for too few nodes).
    ///
    /// # Example
    ///
    /// ```
    /// use sos_core::NodeDistribution;
    /// let sizes = NodeDistribution::Increasing.layer_sizes(100, 5)?;
    /// assert_eq!(sizes.iter().sum::<u64>(), 100);
    /// assert_eq!(sizes[0], 20); // first layer fixed at n / L
    /// // Remaining 80 nodes in ratio 1:2:3:4.
    /// assert_eq!(sizes[1..], [8, 16, 24, 32]);
    /// # Ok::<(), sos_core::ConfigError>(())
    /// ```
    pub fn layer_sizes(&self, sos_nodes: u64, layers: usize) -> Result<Vec<u64>, ConfigError> {
        if layers == 0 {
            return Err(ConfigError::ZeroCount { name: "layers (L)" });
        }
        if sos_nodes == 0 {
            return Err(ConfigError::ZeroCount {
                name: "sos_nodes (n)",
            });
        }
        let sizes = match self {
            NodeDistribution::Even => {
                proportional_split(sos_nodes, &vec![1.0; layers])
            }
            NodeDistribution::Increasing | NodeDistribution::Decreasing => {
                if layers == 1 {
                    vec![sos_nodes]
                } else {
                    let first = sos_nodes / layers as u64;
                    let rest = sos_nodes - first;
                    let mut weights: Vec<f64> =
                        (1..layers as u64).map(|i| i as f64).collect();
                    if matches!(self, NodeDistribution::Decreasing) {
                        weights.reverse();
                    }
                    let mut sizes = vec![first];
                    sizes.extend(proportional_split(rest, &weights));
                    sizes
                }
            }
            NodeDistribution::Custom(weights) => {
                if weights.len() != layers {
                    return Err(ConfigError::InvalidWeights {
                        reason: format!(
                            "expected {layers} weights, got {}",
                            weights.len()
                        ),
                    });
                }
                if weights.iter().any(|&w| w.is_nan() || w < 0.0) {
                    return Err(ConfigError::InvalidWeights {
                        reason: format!("negative or NaN weight in {weights:?}"),
                    });
                }
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Err(ConfigError::InvalidWeights {
                        reason: "weights sum to zero".to_string(),
                    });
                }
                proportional_split(sos_nodes, weights)
            }
        };
        if let Some(idx) = sizes.iter().position(|&s| s == 0) {
            return Err(ConfigError::EmptyLayer { layer: idx + 1 });
        }
        Ok(sizes)
    }

    /// Short machine-readable label used in experiment CSV output.
    pub fn label(&self) -> String {
        match self {
            NodeDistribution::Even => "even".to_string(),
            NodeDistribution::Increasing => "increasing".to_string(),
            NodeDistribution::Decreasing => "decreasing".to_string(),
            NodeDistribution::Custom(w) => format!("custom({} weights)", w.len()),
        }
    }
}

impl std::fmt::Display for NodeDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_balances() {
        let sizes = NodeDistribution::Even.layer_sizes(100, 3).unwrap();
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert!(sizes.iter().all(|&s| s == 33 || s == 34));

        let sizes = NodeDistribution::Even.layer_sizes(99, 3).unwrap();
        assert_eq!(sizes, vec![33, 33, 33]);
    }

    #[test]
    fn increasing_distribution_shape() {
        let sizes = NodeDistribution::Increasing.layer_sizes(100, 4).unwrap();
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert_eq!(sizes[0], 25);
        // Remaining 75 in ratio 1:2:3 → 12.5, 25, 37.5 → rounded, conserving.
        assert!(sizes[1] < sizes[2] && sizes[2] < sizes[3]);
    }

    #[test]
    fn decreasing_distribution_shape() {
        let sizes = NodeDistribution::Decreasing.layer_sizes(100, 4).unwrap();
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert_eq!(sizes[0], 25);
        assert!(sizes[1] > sizes[2] && sizes[2] > sizes[3]);
    }

    #[test]
    fn increasing_and_decreasing_are_mirrors() {
        let inc = NodeDistribution::Increasing.layer_sizes(100, 5).unwrap();
        let dec = NodeDistribution::Decreasing.layer_sizes(100, 5).unwrap();
        let mut tail: Vec<u64> = inc[1..].to_vec();
        tail.reverse();
        assert_eq!(tail, dec[1..].to_vec());
    }

    #[test]
    fn single_layer_gets_everything() {
        for dist in [
            NodeDistribution::Even,
            NodeDistribution::Increasing,
            NodeDistribution::Decreasing,
        ] {
            assert_eq!(dist.layer_sizes(42, 1).unwrap(), vec![42]);
        }
    }

    #[test]
    fn custom_weights_respected() {
        let dist = NodeDistribution::Custom(vec![1.0, 1.0, 2.0]);
        assert_eq!(dist.layer_sizes(100, 3).unwrap(), vec![25, 25, 50]);
    }

    #[test]
    fn custom_weight_validation() {
        assert!(matches!(
            NodeDistribution::Custom(vec![1.0]).layer_sizes(10, 2),
            Err(ConfigError::InvalidWeights { .. })
        ));
        assert!(matches!(
            NodeDistribution::Custom(vec![1.0, -1.0]).layer_sizes(10, 2),
            Err(ConfigError::InvalidWeights { .. })
        ));
        assert!(matches!(
            NodeDistribution::Custom(vec![0.0, 0.0]).layer_sizes(10, 2),
            Err(ConfigError::InvalidWeights { .. })
        ));
    }

    #[test]
    fn empty_layers_rejected() {
        // 3 nodes over 5 layers must fail.
        assert!(matches!(
            NodeDistribution::Even.layer_sizes(3, 5),
            Err(ConfigError::EmptyLayer { .. })
        ));
        // Increasing with tiny remainder starves layer 2.
        assert!(matches!(
            NodeDistribution::Increasing.layer_sizes(10, 10),
            Err(ConfigError::EmptyLayer { .. })
        ));
    }

    #[test]
    fn zero_inputs_rejected() {
        assert!(NodeDistribution::Even.layer_sizes(0, 3).is_err());
        assert!(NodeDistribution::Even.layer_sizes(10, 0).is_err());
    }

    #[test]
    fn labels_stable() {
        assert_eq!(NodeDistribution::Even.to_string(), "even");
        assert_eq!(NodeDistribution::Increasing.to_string(), "increasing");
        assert_eq!(NodeDistribution::Decreasing.to_string(), "decreasing");
    }
}
