//! Computing `P_S` from per-layer compromise counts — equation (1).
//!
//! The paper expresses the probability that a message makes it from a
//! client to the target as
//!
//! ```text
//! P_S = ∏_{i=1}^{L+1} (1 − P(n_i, s_i, m_i)),
//! ```
//!
//! where `P(n_i, s_i, m_i)` is the probability that *all* `m_i` next-hop
//! neighbors at layer `i` of a forwarding node are bad. The average-case
//! model plugs in fractional `s_i`, which requires choosing a continuous
//! extension of the combinatorial ratio `C(s, m)/C(n, m)`; see
//! `DESIGN.md` §1 for why this matters. Two extensions are provided:
//!
//! * [`PathEvaluator::Hypergeometric`] — the paper's formula, evaluated in
//!   clamped product form (`m` rounded to the nearest integer). Exactly
//!   zero while `s_i < m_i`, which makes high mapping degrees appear
//!   perfectly immune to moderate random congestion.
//! * [`PathEvaluator::Binomial`] — the independent-compromise relaxation
//!   `(s/n)^m`, defined for fractional `m` and never saturating; this is
//!   the evaluator whose shapes match the paper's plotted curves and the
//!   Monte Carlo ground truth.

use crate::params::Probability;
use crate::state::CompromiseState;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use sos_math::hypergeom::{all_specific_in_sample, all_specific_in_sample_binomial};

/// Strategy for evaluating the per-layer failure probability
/// `P(n_i, s_i, m_i)` at fractional average-case arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PathEvaluator {
    /// The paper's combinatorial ratio `C(s,m)/C(n,m)` (clamped product
    /// form; `m` rounded to nearest integer, minimum 1).
    Hypergeometric,
    /// Independent-compromise relaxation `(s/n)^m` (supports fractional
    /// `m`; default because its shapes match the paper's figures).
    #[default]
    Binomial,
}

impl PathEvaluator {
    /// Probability that all `m` neighbors chosen from a layer of `n`
    /// nodes with `s` bad nodes are bad — the paper's `P(n, s, m)`.
    ///
    /// Returns a value in `[0, 1]`; `s` is clamped into `[0, n]` first.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `m <= 0` — an empty layer or a node with no
    /// neighbors cannot forward at all and upstream validation rejects
    /// such topologies.
    ///
    /// # Example
    ///
    /// ```
    /// use sos_core::PathEvaluator;
    /// // One neighbor out of 100 nodes, 20 bad: both evaluators agree.
    /// let h = PathEvaluator::Hypergeometric.layer_failure(100, 20.0, 1.0);
    /// let b = PathEvaluator::Binomial.layer_failure(100, 20.0, 1.0);
    /// assert!((h - 0.2).abs() < 1e-12);
    /// assert!((b - 0.2).abs() < 1e-12);
    /// ```
    pub fn layer_failure(&self, n: u64, s: f64, m: f64) -> f64 {
        assert!(n > 0, "layer must be non-empty");
        assert!(m > 0.0, "mapping degree must be positive");
        let s = s.clamp(0.0, n as f64);
        match self {
            PathEvaluator::Hypergeometric => {
                let m_int = (m.round() as u64).clamp(1, n);
                all_specific_in_sample(n as f64, s, m_int)
            }
            PathEvaluator::Binomial => {
                all_specific_in_sample_binomial(n as f64, s, m.min(n as f64))
            }
        }
    }

    /// Per-layer success probability `P_i = 1 − P(n_i, s_i, m_i)`.
    pub fn layer_success(&self, n: u64, s: f64, m: f64) -> f64 {
        1.0 - self.layer_failure(n, s, m)
    }

    /// End-to-end success probability `P_S` (equation (1)) for a
    /// compromise state over a topology.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different topology shape.
    ///
    /// # Example
    ///
    /// ```
    /// use sos_core::{CompromiseState, MappingDegree, PathEvaluator, Topology};
    ///
    /// let topo = Topology::builder()
    ///     .layer_sizes(vec![100])
    ///     .mapping(MappingDegree::ONE_TO_ONE)
    ///     .filters(10)
    ///     .build()?;
    /// let mut state = CompromiseState::clean(&topo);
    /// state.set_congested(1, 20.0);
    /// let ps = PathEvaluator::Hypergeometric.success_probability(&topo, &state);
    /// assert!((ps.value() - 0.8).abs() < 1e-12);
    /// # Ok::<(), sos_core::ConfigError>(())
    /// ```
    pub fn success_probability(
        &self,
        topology: &Topology,
        state: &CompromiseState,
    ) -> Probability {
        assert_eq!(
            state.layer_count(),
            topology.layer_count() + 1,
            "state shape does not match topology"
        );
        let mut ps = 1.0;
        for (i, size, degree) in topology.boundaries() {
            ps *= self.layer_success(size, state.bad(i), degree);
        }
        Probability::clamped(ps)
    }

    /// Per-layer success probabilities `P_1..=P_{L+1}` — useful for
    /// attributing which layer dominates a failure.
    pub fn layer_successes(
        &self,
        topology: &Topology,
        state: &CompromiseState,
    ) -> Vec<f64> {
        topology
            .boundaries()
            .map(|(i, size, degree)| self.layer_success(size, state.bad(i), degree))
            .collect()
    }

    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            PathEvaluator::Hypergeometric => "hypergeometric",
            PathEvaluator::Binomial => "binomial",
        }
    }
}

impl std::fmt::Display for PathEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingDegree;

    fn topo(mapping: MappingDegree) -> Topology {
        Topology::builder()
            .layer_sizes(vec![50, 50])
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    #[test]
    fn evaluators_agree_for_degree_one() {
        for s in [0.0, 1.0, 12.5, 49.9, 50.0] {
            let h = PathEvaluator::Hypergeometric.layer_failure(50, s, 1.0);
            let b = PathEvaluator::Binomial.layer_failure(50, s, 1.0);
            assert!((h - b).abs() < 1e-12, "s = {s}: {h} vs {b}");
        }
    }

    #[test]
    fn hypergeometric_saturates_below_degree() {
        // s < m ⇒ exact 0 failure under the combinatorial form...
        assert_eq!(
            PathEvaluator::Hypergeometric.layer_failure(50, 4.0, 5.0),
            0.0
        );
        // ...but not under the binomial relaxation.
        assert!(PathEvaluator::Binomial.layer_failure(50, 4.0, 5.0) > 0.0);
    }

    #[test]
    fn failure_monotone_in_bad_count() {
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            let mut prev = 0.0;
            for s in 0..=50 {
                let p = eval.layer_failure(50, s as f64, 3.0);
                assert!(p >= prev - 1e-12, "{eval}: s = {s}");
                prev = p;
            }
            assert!((prev - 1.0).abs() < 1e-9, "{eval}: fully-bad layer must fail");
        }
    }

    #[test]
    fn clean_state_gives_certain_success() {
        let t = topo(MappingDegree::OneTo(2));
        let s = CompromiseState::clean(&t);
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            assert_eq!(eval.success_probability(&t, &s).value(), 1.0);
        }
    }

    #[test]
    fn fully_congested_layer_gives_certain_failure() {
        let t = topo(MappingDegree::OneTo(2));
        let mut s = CompromiseState::clean(&t);
        s.set_congested(2, 50.0);
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            assert_eq!(eval.success_probability(&t, &s).value(), 0.0);
        }
    }

    #[test]
    fn success_probability_multiplies_layers() {
        let t = topo(MappingDegree::ONE_TO_ONE);
        let mut s = CompromiseState::clean(&t);
        s.set_congested(1, 10.0); // P_1 = 0.8
        s.set_congested(2, 25.0); // P_2 = 0.5
        let ps = PathEvaluator::Hypergeometric.success_probability(&t, &s);
        assert!((ps.value() - 0.4).abs() < 1e-12);
        let per_layer = PathEvaluator::Hypergeometric.layer_successes(&t, &s);
        assert_eq!(per_layer.len(), 3);
        assert!((per_layer[0] - 0.8).abs() < 1e-12);
        assert!((per_layer[1] - 0.5).abs() < 1e-12);
        assert!((per_layer[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_layer_participates() {
        let t = topo(MappingDegree::ONE_TO_ONE);
        let mut s = CompromiseState::clean(&t);
        s.set_congested(3, 5.0); // half the filters
        let ps = PathEvaluator::Hypergeometric.success_probability(&t, &s);
        assert!((ps.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binomial_supports_fractional_degree() {
        let p = PathEvaluator::Binomial.layer_failure(33, 16.5, 16.5);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    #[should_panic(expected = "mapping degree must be positive")]
    fn zero_degree_rejected() {
        PathEvaluator::Binomial.layer_failure(10, 1.0, 0.0);
    }
}
