//! Domain model for the **generalized Secure Overlay Services (SOS)
//! architecture** of Xuan, Chellappan, Wang & Wang (ICDCS 2004).
//!
//! The original SOS architecture (Keromytis et al., SIGCOMM 2002) routes
//! client traffic to a protected target through three fixed overlay layers
//! (SOAPs → beacons → secret servlets) and a ring of filters. The ICDCS
//! 2004 paper generalizes this to `L` layers with three tunable design
//! features, all first-class types in this crate:
//!
//! * the **number of layers** `L` ([`Topology`]),
//! * the **node distribution per layer** `n_1..n_L`
//!   ([`NodeDistribution`]), and
//! * the **mapping degree** `m_i` — how many next-layer neighbors each
//!   node knows ([`MappingDegree`]).
//!
//! On top of the structural model the crate defines the shared vocabulary
//! used by the analytical (`sos-analysis`) and simulation (`sos-sim`)
//! crates: system parameters ([`SystemParams`]), attack budgets
//! ([`AttackBudget`], [`AttackConfig`]), per-layer compromise state
//! ([`CompromiseState`]) and the `P_S` evaluator ([`PathEvaluator`]),
//! which turns per-layer bad-node counts into the paper's success
//! probability via equation (1):
//!
//! ```text
//! P_S = ∏_{i=1}^{L+1} (1 − P(n_i, s_i, m_i))
//! ```
//!
//! # Example
//!
//! ```
//! use sos_core::{NodeDistribution, MappingDegree, Scenario, SystemParams};
//!
//! // The paper's default configuration: N=10000 overlay nodes, n=100 SOS
//! // nodes, 10 filters, P_B=0.5, evenly distributed across 3 layers with
//! // one-to-two mapping.
//! let scenario = Scenario::builder()
//!     .system(SystemParams::new(10_000, 100, 0.5)?)
//!     .layers(3)
//!     .distribution(NodeDistribution::Even)
//!     .mapping(MappingDegree::OneTo(2))
//!     .filters(10)
//!     .build()?;
//! assert_eq!(scenario.topology().layer_count(), 3);
//! assert_eq!(scenario.topology().layer_sizes(), &[34, 33, 33]);
//! # Ok::<(), sos_core::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribution;
pub mod error;
pub mod evaluator;
pub mod mapping;
pub mod params;
pub mod presets;
pub mod scenario;
pub mod state;
pub mod topology;

pub use distribution::NodeDistribution;
pub use error::ConfigError;
pub use evaluator::PathEvaluator;
pub use mapping::MappingDegree;
pub use params::{AttackBudget, AttackConfig, Probability, SuccessiveParams, SystemParams};
pub use presets::ThreatPreset;
pub use scenario::{Scenario, ScenarioBuilder};
pub use state::CompromiseState;
pub use topology::{Topology, TopologyBuilder};
