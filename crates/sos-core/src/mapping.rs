//! Mapping-degree policies: how many next-layer neighbors each node knows.
//!
//! The paper calls `m_i` the *mapping degree* into layer `i`: the number of
//! neighbors a node at layer `i−1` keeps in its routing table for layer
//! `i`. Clients are treated uniformly — `m_1` is the number of first-layer
//! (SOAP) nodes a client knows.
//!
//! Named degrees from the paper's figures:
//!
//! | name         | `m_i`        | figures        |
//! |--------------|--------------|----------------|
//! | one-to-one   | `1`          | 4, 6           |
//! | one-to-two   | `2`          | 6              |
//! | one-to-five  | `5`          | 6, 7, 8        |
//! | one-to-half  | `n_i / 2`    | 4, 6           |
//! | one-to-all   | `n_i`        | 4, 6 (orig SOS)|

use serde::{Deserialize, Serialize};

/// Policy mapping a target-layer size `n_i` to the degree `m_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MappingDegree {
    /// Exactly `k` neighbors (capped at the layer size).
    /// `OneTo(1)` is the paper's "one to one" mapping.
    OneTo(u64),
    /// Half of the next layer: `m_i = n_i / 2` (may be fractional in the
    /// average-case analysis; the simulator rounds to nearest, min 1).
    OneToHalf,
    /// Every node of the next layer: `m_i = n_i` (the original SOS
    /// assumption).
    OneToAll,
    /// Explicit degree per layer boundary, `m_1..=m_{L+1}` (values are
    /// capped at the corresponding layer size).
    Custom(Vec<f64>),
}

impl MappingDegree {
    /// The paper's "one to one" mapping.
    pub const ONE_TO_ONE: MappingDegree = MappingDegree::OneTo(1);

    /// Degree into a layer of `layer_size` nodes, for the boundary with
    /// 1-based index `boundary` (1 = client→layer1, …, L+1 = layerL→filters).
    ///
    /// Every policy returns a value in `[min(1, n_i), n_i]`.
    ///
    /// # Panics
    ///
    /// Panics if `boundary == 0`, or if the policy is `Custom` and
    /// `boundary` exceeds the provided vector (catching topology/mapping
    /// mismatches early).
    ///
    /// # Example
    ///
    /// ```
    /// use sos_core::MappingDegree;
    /// assert_eq!(MappingDegree::OneTo(5).degree_into(40, 2), 5.0);
    /// assert_eq!(MappingDegree::OneToHalf.degree_into(40, 2), 20.0);
    /// assert_eq!(MappingDegree::OneToAll.degree_into(40, 2), 40.0);
    /// // Requested degree larger than the layer is capped.
    /// assert_eq!(MappingDegree::OneTo(100).degree_into(40, 2), 40.0);
    /// ```
    pub fn degree_into(&self, layer_size: u64, boundary: usize) -> f64 {
        assert!(boundary >= 1, "layer boundaries are 1-based");
        let n = layer_size as f64;
        let raw = match self {
            MappingDegree::OneTo(k) => *k as f64,
            MappingDegree::OneToHalf => n / 2.0,
            MappingDegree::OneToAll => n,
            MappingDegree::Custom(degrees) => {
                assert!(
                    boundary <= degrees.len(),
                    "custom mapping has {} degrees but boundary {boundary} was requested",
                    degrees.len()
                );
                degrees[boundary - 1]
            }
        };
        raw.clamp(1.0_f64.min(n), n)
    }

    /// Short machine-readable label used in experiment CSV output.
    pub fn label(&self) -> String {
        match self {
            MappingDegree::OneTo(1) => "one-to-one".to_string(),
            MappingDegree::OneTo(k) => format!("one-to-{k}"),
            MappingDegree::OneToHalf => "one-to-half".to_string(),
            MappingDegree::OneToAll => "one-to-all".to_string(),
            MappingDegree::Custom(d) => format!("custom({} boundaries)", d.len()),
        }
    }

    /// The named mappings the paper sweeps in its figures, in a stable
    /// presentation order.
    pub fn paper_named_set() -> Vec<MappingDegree> {
        vec![
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneTo(2),
            MappingDegree::OneTo(5),
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ]
    }
}

impl std::fmt::Display for MappingDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_degrees() {
        assert_eq!(MappingDegree::ONE_TO_ONE.degree_into(33, 1), 1.0);
        assert_eq!(MappingDegree::OneTo(2).degree_into(33, 1), 2.0);
        assert_eq!(MappingDegree::OneTo(5).degree_into(33, 1), 5.0);
        assert_eq!(MappingDegree::OneToHalf.degree_into(33, 1), 16.5);
        assert_eq!(MappingDegree::OneToAll.degree_into(33, 1), 33.0);
    }

    #[test]
    fn degree_capped_at_layer_size() {
        assert_eq!(MappingDegree::OneTo(10).degree_into(4, 1), 4.0);
        assert_eq!(MappingDegree::OneToAll.degree_into(1, 1), 1.0);
    }

    #[test]
    fn degree_at_least_one_when_layer_nonempty() {
        assert_eq!(MappingDegree::OneToHalf.degree_into(1, 1), 1.0);
        assert_eq!(MappingDegree::Custom(vec![0.2]).degree_into(9, 1), 1.0);
    }

    #[test]
    fn zero_size_layer_yields_zero() {
        assert_eq!(MappingDegree::OneTo(3).degree_into(0, 1), 0.0);
    }

    #[test]
    fn custom_per_boundary() {
        let m = MappingDegree::Custom(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.degree_into(10, 1), 1.0);
        assert_eq!(m.degree_into(10, 2), 2.0);
        assert_eq!(m.degree_into(10, 3), 3.0);
    }

    #[test]
    #[should_panic(expected = "custom mapping has 2 degrees")]
    fn custom_out_of_range_boundary_panics() {
        MappingDegree::Custom(vec![1.0, 2.0]).degree_into(10, 3);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(MappingDegree::ONE_TO_ONE.to_string(), "one-to-one");
        assert_eq!(MappingDegree::OneTo(5).to_string(), "one-to-5");
        assert_eq!(MappingDegree::OneToHalf.to_string(), "one-to-half");
        assert_eq!(MappingDegree::OneToAll.to_string(), "one-to-all");
    }

    #[test]
    fn paper_set_has_five_mappings() {
        assert_eq!(MappingDegree::paper_named_set().len(), 5);
    }
}
