//! Per-layer compromise state: the `b_i`, `c_i`, `s_i` of the paper.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Average-case (possibly fractional) counts of compromised nodes per
/// layer, covering layers `1..=L+1` (the last entry is the filter layer).
///
/// A *bad* node is one that is broken into **or** congested
/// (`s_i = b_i + c_i`); the two contributions are tracked separately
/// because the paper's attack models treat them differently (broken-in
/// nodes are never also congested).
///
/// # Example
///
/// ```
/// use sos_core::{CompromiseState, MappingDegree, Topology};
///
/// let topo = Topology::builder()
///     .layer_sizes(vec![50, 50])
///     .mapping(MappingDegree::ONE_TO_ONE)
///     .filters(10)
///     .build()?;
/// let mut state = CompromiseState::clean(&topo);
/// state.set_broken(1, 5.0);
/// state.set_congested(1, 10.0);
/// assert_eq!(state.bad(1), 15.0);
/// assert_eq!(state.bad(3), 0.0); // filters untouched
/// # Ok::<(), sos_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompromiseState {
    broken: Vec<f64>,
    congested: Vec<f64>,
    layer_sizes: Vec<u64>,
}

impl CompromiseState {
    /// A state with no compromised nodes, shaped for `topology`
    /// (`L+1` entries, the last being the filter layer).
    pub fn clean(topology: &Topology) -> Self {
        let mut layer_sizes: Vec<u64> = topology.layer_sizes().to_vec();
        layer_sizes.push(topology.filter_count());
        let len = layer_sizes.len();
        CompromiseState {
            broken: vec![0.0; len],
            congested: vec![0.0; len],
            layer_sizes,
        }
    }

    /// Builds a state from explicit per-layer counts (must both have
    /// length `L+1` and match the topology's layer sizes).
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree with the topology or any count is
    /// negative/NaN — these are internal-model bugs, not user input.
    pub fn from_counts(topology: &Topology, broken: Vec<f64>, congested: Vec<f64>) -> Self {
        let expected = topology.layer_count() + 1;
        assert_eq!(broken.len(), expected, "broken counts must cover L+1 layers");
        assert_eq!(
            congested.len(),
            expected,
            "congested counts must cover L+1 layers"
        );
        assert!(
            broken.iter().chain(&congested).all(|v| v.is_finite() && *v >= 0.0),
            "compromise counts must be finite and non-negative"
        );
        let mut state = CompromiseState::clean(topology);
        state.broken = broken;
        state.congested = congested;
        state
    }

    /// Number of tracked layers (`L+1`).
    pub fn layer_count(&self) -> usize {
        self.layer_sizes.len()
    }

    /// Broken-in count `b_i` for 1-based layer `i`.
    pub fn broken(&self, i: usize) -> f64 {
        self.broken[self.check(i)]
    }

    /// Congested count `c_i` for 1-based layer `i`.
    pub fn congested(&self, i: usize) -> f64 {
        self.congested[self.check(i)]
    }

    /// Bad count `s_i = b_i + c_i`, capped at the layer size.
    pub fn bad(&self, i: usize) -> f64 {
        let idx = self.check(i);
        (self.broken[idx] + self.congested[idx]).min(self.layer_sizes[idx] as f64)
    }

    /// Sets the broken-in count for 1-based layer `i`, capping at the
    /// layer size.
    pub fn set_broken(&mut self, i: usize, value: f64) {
        let idx = self.check(i);
        self.broken[idx] = value.clamp(0.0, self.layer_sizes[idx] as f64);
    }

    /// Sets the congested count for 1-based layer `i`, capping at the
    /// layer size.
    pub fn set_congested(&mut self, i: usize, value: f64) {
        let idx = self.check(i);
        self.congested[idx] = value.clamp(0.0, self.layer_sizes[idx] as f64);
    }

    /// Total broken-in nodes over all layers (`N_B` once the attack is
    /// complete).
    pub fn total_broken(&self) -> f64 {
        self.broken.iter().sum()
    }

    /// Total congested nodes over all layers.
    pub fn total_congested(&self) -> f64 {
        self.congested.iter().sum()
    }

    /// Total bad nodes over all layers.
    pub fn total_bad(&self) -> f64 {
        (1..=self.layer_count()).map(|i| self.bad(i)).sum()
    }

    /// Fraction of layer `i` that is bad, in `[0, 1]`.
    pub fn bad_fraction(&self, i: usize) -> f64 {
        let idx = self.check(i);
        let size = self.layer_sizes[idx];
        if size == 0 {
            0.0
        } else {
            self.bad(i) / size as f64
        }
    }

    fn check(&self, i: usize) -> usize {
        assert!(
            (1..=self.layer_sizes.len()).contains(&i),
            "layer {i} out of range (1..={})",
            self.layer_sizes.len()
        );
        i - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingDegree;

    fn topo() -> Topology {
        Topology::builder()
            .layer_sizes(vec![30, 30, 40])
            .mapping(MappingDegree::ONE_TO_ONE)
            .filters(10)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_state_is_all_zero() {
        let s = CompromiseState::clean(&topo());
        assert_eq!(s.layer_count(), 4);
        for i in 1..=4 {
            assert_eq!(s.bad(i), 0.0);
            assert_eq!(s.bad_fraction(i), 0.0);
        }
        assert_eq!(s.total_bad(), 0.0);
    }

    #[test]
    fn bad_is_sum_of_broken_and_congested() {
        let mut s = CompromiseState::clean(&topo());
        s.set_broken(2, 4.5);
        s.set_congested(2, 3.25);
        assert_eq!(s.bad(2), 7.75);
        assert_eq!(s.total_broken(), 4.5);
        assert_eq!(s.total_congested(), 3.25);
    }

    #[test]
    fn counts_capped_at_layer_size() {
        let mut s = CompromiseState::clean(&topo());
        s.set_broken(1, 25.0);
        s.set_congested(1, 25.0);
        // Individually capped at 30, sum capped at 30 too.
        assert_eq!(s.bad(1), 30.0);
        s.set_congested(1, 1e9);
        assert_eq!(s.congested(1), 30.0);
    }

    #[test]
    fn negative_values_clamped() {
        let mut s = CompromiseState::clean(&topo());
        s.set_broken(1, -5.0);
        assert_eq!(s.broken(1), 0.0);
    }

    #[test]
    fn from_counts_round_trip() {
        let t = topo();
        let s = CompromiseState::from_counts(
            &t,
            vec![1.0, 2.0, 3.0, 0.0],
            vec![4.0, 5.0, 6.0, 1.0],
        );
        assert_eq!(s.bad(1), 5.0);
        assert_eq!(s.bad(4), 1.0);
        assert_eq!(s.total_bad(), 22.0);
    }

    #[test]
    #[should_panic(expected = "must cover L+1 layers")]
    fn from_counts_wrong_length_panics() {
        CompromiseState::from_counts(&topo(), vec![0.0; 3], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_zero_panics() {
        CompromiseState::clean(&topo()).bad(0);
    }

    #[test]
    fn bad_fraction_normalizes() {
        let mut s = CompromiseState::clean(&topo());
        s.set_congested(3, 10.0);
        assert_eq!(s.bad_fraction(3), 0.25);
    }
}
