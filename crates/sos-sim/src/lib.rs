//! Monte Carlo simulation engine and experiment harness for SOS
//! resilience.
//!
//! The analytical model (`sos-analysis`) predicts `P_S` from average-case
//! set sizes; this crate measures it empirically:
//!
//! 1. instantiate a concrete overlay ([`sos_overlay::Overlay`]),
//! 2. execute an attack on it ([`sos_attack`]),
//! 3. route messages from clients to the target through the damaged
//!    overlay ([`routing`]),
//! 4. repeat over many attack instances and seeds, aggregate with
//!    confidence intervals ([`engine`]).
//!
//! The [`engine::Simulation`] runner is deterministic for a fixed seed
//! and can fan trials out over threads; its
//! [`run_traced`](engine::Simulation::run_traced) variant additionally
//! streams every instrumented decision point to a
//! [`sos_observe::Recorder`] and aggregates per-trial metrics. Multi-point
//! experiments (figure families, ablations, parameter sweeps) go through
//! the [`sweep`] executor — a persistent worker pool with interleaved
//! trial scheduling plus a content-addressed result cache
//! ([`run_sweep`], [`set_global_cache`]) — instead of one
//! `run_parallel` call per point. The [`compare`] module pairs
//! simulated results with both analytical evaluators — the data behind
//! the `ablation-evaluator` experiment and the validation tables in
//! `EXPERIMENTS.md`. The [`repair`] module implements the paper's named
//! future work (dynamic repair during an on-going attack).
//!
//! Orthogonally to the attack, every hop can be subjected to *benign*
//! faults (loss, delay, crash, slow-down, misroute) via a deterministic
//! [`sos_faults::FaultPlan`]: pass a [`sos_faults::FaultConfig`] to
//! [`SimulationConfig::faults`](engine::SimulationConfig::faults) and a
//! [`sos_faults::RetryPolicy`] to control per-hop retries; routing then
//! degrades gracefully (successor-list walking, alternate next-layer
//! neighbors) and reports every incident through `sos-observe` events.
//!
//! # Example
//!
//! ```
//! use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
//! use sos_sim::engine::{Simulation, SimulationConfig};
//!
//! let scenario = Scenario::builder()
//!     .system(SystemParams::new(1_000, 60, 0.5)?)
//!     .layers(3)
//!     .mapping(MappingDegree::OneTo(2))
//!     .build()?;
//! let config = SimulationConfig::new(
//!     scenario,
//!     AttackConfig::OneBurst { budget: AttackBudget::new(0, 200) },
//! )
//! .trials(50)
//! .routes_per_trial(40)
//! .seed(7);
//! let result = Simulation::new(config).run();
//! // 20% of the overlay congested, one-to-two mapping: most routes hold.
//! assert!(result.success_rate() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod engine;
pub mod flow;
pub(crate) mod pool;
pub mod repair;
pub mod route_batch;
pub mod routing;
pub mod sweep;
pub mod timing;

pub use compare::{ComparisonRow, compare_models};
pub use engine::{
    build_reuse_enabled, num_threads, route_batch_width, route_lane_seed, set_build_reuse,
    set_route_batch_width, stream, trial_stream_seed, Simulation, SimulationConfig,
    SimulationResult, TransportKind,
};
pub use route_batch::RouteBatchScratch;
pub use sweep::{
    config_fingerprint, run_sweep, run_sweep_traced, set_global_cache, structural_fingerprint,
    sweep_stats, CacheLoadReport, SweepExecutor, SweepStats,
};
pub use flow::{FlowModel, FlowResult, FlowSimulation};
pub use repair::{RepairConfig, RepairSimulation, RepairTimeline};
pub use routing::{
    route_message, route_message_with, RouteIncident, RouteIncidentKind, RouteResult,
    RoutingPolicy,
};
pub use timing::{measure_latency, LatencyDistribution};
