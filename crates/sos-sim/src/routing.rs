//! Routing a message from a client to the target through the layered
//! overlay.
//!
//! A route starts at the client's entry set (`m_1` first-layer nodes),
//! passes through one node per layer, crosses the filter ring, and — if
//! every hop finds a usable next node — reaches the target.
//!
//! The paper's equation (1) treats the per-layer failure events as
//! independent: a message at layer `i−1` fails iff *all* `m_i` of the
//! current node's neighbors are bad. That corresponds to
//! [`RoutingPolicy::RandomGood`] (pick any good neighbor, never revisit
//! an earlier choice). [`RoutingPolicy::Backtracking`] instead searches
//! the whole reachable DAG and succeeds iff *some* fully-good path
//! exists — an upper bound that quantifies how much the independence
//! assumption costs.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sos_math::sampling::shuffle;
use sos_overlay::{NodeId, Overlay, Transport};
use std::collections::HashSet;

/// How a forwarding node chooses among its next-layer neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Pick a uniformly random usable neighbor; give up at a node with
    /// none. Matches the analytical model's independence assumption.
    #[default]
    RandomGood,
    /// Pick the first usable neighbor in table order. A deterministic
    /// variant that concentrates traffic (worst for load, identical
    /// success probability under exchangeable tables).
    FirstGood,
    /// Depth-first search with backtracking over the layered DAG;
    /// succeeds iff any all-good path exists. Upper-bounds both other
    /// policies.
    Backtracking,
}

impl RoutingPolicy {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RandomGood => "random-good",
            RoutingPolicy::FirstGood => "first-good",
            RoutingPolicy::Backtracking => "backtracking",
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one routing attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    /// Whether the message reached the target (crossed the filter ring).
    pub delivered: bool,
    /// Overlay-level path actually taken (entry node … filter); for
    /// backtracking, the successful path if any, otherwise the deepest
    /// prefix explored.
    pub path: Vec<NodeId>,
    /// Underlay hops consumed (equals `path.len()` segments under direct
    /// transport; more under Chord transport).
    pub underlay_hops: usize,
    /// Deepest 1-based layer from which a usable next hop was found
    /// (`L+1` means the filter ring was reached).
    pub deepest_layer: usize,
}

/// Attempts to route one message from a fresh client through `overlay`.
///
/// The client draws `m_1` first-layer contacts, then the chosen policy
/// walks the layers. A hop from node `v` to neighbor `w` is usable when
/// `transport` can deliver it (destination good; for Chord transport all
/// intermediate hops good too).
pub fn route_message<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    rng: &mut R,
) -> RouteResult {
    let entries = overlay.sample_entry_points(rng);
    let last_layer = overlay.layer_count() + 1; // filters
    match policy {
        RoutingPolicy::RandomGood | RoutingPolicy::FirstGood => {
            greedy_route(overlay, transport, policy, entries, last_layer, rng)
        }
        RoutingPolicy::Backtracking => {
            backtracking_route(overlay, transport, entries, last_layer, rng)
        }
    }
}

fn greedy_route<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    mut candidates: Vec<NodeId>,
    last_layer: usize,
    rng: &mut R,
) -> RouteResult {
    let mut path = Vec::new();
    let mut underlay_hops = 0usize;
    let mut deepest_layer = 0usize;
    // `candidates` are the potential nodes at the next layer; the
    // "client hop" into layer 1 is a plain reachability check (clients
    // talk to SOAPs directly).
    let mut current: Option<NodeId> = None;
    loop {
        if policy == RoutingPolicy::RandomGood {
            shuffle(rng, &mut candidates);
        }
        let mut next = None;
        for &cand in &candidates {
            match current {
                None => {
                    // Client → first layer: direct contact.
                    if overlay.is_good(cand) {
                        next = Some((cand, 1usize));
                        break;
                    }
                }
                Some(v) => {
                    let outcome = transport.deliver(overlay, v, cand);
                    if let sos_overlay::transport::DeliveryOutcome::Delivered { hops } =
                        outcome
                    {
                        next = Some((cand, hops));
                        break;
                    }
                }
            }
        }
        let Some((node, hops)) = next else {
            return RouteResult {
                delivered: false,
                path,
                underlay_hops,
                deepest_layer,
            };
        };
        underlay_hops += hops;
        path.push(node);
        let layer = overlay
            .layer_of(node)
            .expect("routed nodes are always infrastructure");
        deepest_layer = layer;
        if layer == last_layer {
            return RouteResult {
                delivered: true,
                path,
                underlay_hops,
                deepest_layer,
            };
        }
        candidates = overlay.neighbors(node).to_vec();
        current = Some(node);
    }
}

fn backtracking_route<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    mut entries: Vec<NodeId>,
    last_layer: usize,
    rng: &mut R,
) -> RouteResult {
    shuffle(rng, &mut entries);
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut best_prefix: Vec<NodeId> = Vec::new();
    let mut best_prefix_hops = 0usize;
    let mut deepest_layer = 0usize;

    // Explicit DFS stack; each frame carries the path and its underlay
    // cost so the delivered result reports the *path's* hops, not the
    // total exploration cost.
    struct Frame {
        node: NodeId,
        path: Vec<NodeId>,
        hops: usize,
    }
    let mut stack: Vec<Frame> = entries
        .into_iter()
        .filter(|&e| overlay.is_good(e))
        .map(|e| Frame {
            node: e,
            path: vec![e],
            hops: 1, // client → entry contact
        })
        .collect();

    while let Some(Frame { node, path, hops }) = stack.pop() {
        if !visited.insert(node) {
            continue;
        }
        let layer = overlay
            .layer_of(node)
            .expect("routed nodes are always infrastructure");
        if layer > deepest_layer {
            deepest_layer = layer;
            best_prefix = path.clone();
            best_prefix_hops = hops;
        }
        if layer == last_layer {
            return RouteResult {
                delivered: true,
                underlay_hops: hops,
                path,
                deepest_layer,
            };
        }
        let mut neighbors = overlay.neighbors(node).to_vec();
        shuffle(rng, &mut neighbors);
        for next in neighbors {
            if visited.contains(&next) {
                continue;
            }
            let outcome = transport.deliver(overlay, node, next);
            if let sos_overlay::transport::DeliveryOutcome::Delivered { hops: edge } =
                outcome
            {
                let mut next_path = path.clone();
                next_path.push(next);
                stack.push(Frame {
                    node: next,
                    path: next_path,
                    hops: hops + edge,
                });
            }
        }
    }
    RouteResult {
        delivered: false,
        path: best_prefix,
        underlay_hops: best_prefix_hops,
        deepest_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};
    use sos_overlay::NodeStatus;

    fn overlay(mapping: MappingDegree, seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(500, 45, 0.5).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    #[test]
    fn clean_overlay_always_delivers() {
        let o = overlay(MappingDegree::OneTo(2), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            for _ in 0..50 {
                let r = route_message(&o, &Transport::Direct, policy, &mut rng);
                assert!(r.delivered, "{policy} failed on a clean overlay");
                // Path: layer1, layer2, layer3, filter.
                assert_eq!(r.path.len(), 4);
                assert_eq!(r.deepest_layer, 4);
                assert_eq!(r.underlay_hops, 4);
            }
        }
    }

    #[test]
    fn fully_congested_layer_blocks_everything() {
        let mut o = overlay(MappingDegree::OneTo(2), 3);
        for &n in o.layer_members(2).to_vec().iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let mut rng = StdRng::seed_from_u64(4);
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            for _ in 0..20 {
                let r = route_message(&o, &Transport::Direct, policy, &mut rng);
                assert!(!r.delivered, "{policy} slipped through a dead layer");
                assert!(r.deepest_layer <= 1);
            }
        }
    }

    #[test]
    fn backtracking_dominates_greedy() {
        // Damage the overlay heavily; backtracking must succeed at least
        // as often as random-good on the same damage pattern.
        let mut rng = StdRng::seed_from_u64(5);
        let mut greedy_wins = 0u32;
        let mut backtrack_wins = 0u32;
        for seed in 0..30 {
            let mut o = overlay(MappingDegree::OneTo(3), 100 + seed);
            // Congest 40% of each SOS layer.
            for layer in 1..=3 {
                let members = o.layer_members(layer).to_vec();
                let k = members.len() * 2 / 5;
                for &m in &members[..k] {
                    o.set_status(m, NodeStatus::Congested);
                }
            }
            let mut g = 0u32;
            let mut b = 0u32;
            for _ in 0..40 {
                if route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng)
                    .delivered
                {
                    g += 1;
                }
                if route_message(
                    &o,
                    &Transport::Direct,
                    RoutingPolicy::Backtracking,
                    &mut rng,
                )
                .delivered
                {
                    b += 1;
                }
            }
            greedy_wins += g;
            backtrack_wins += b;
        }
        assert!(
            backtrack_wins >= greedy_wins,
            "backtracking {backtrack_wins} < greedy {greedy_wins}"
        );
    }

    #[test]
    fn random_good_failure_rate_matches_analytic_one_to_one() {
        // One-to-one mapping, exactly one path per client: P_S per hop is
        // exactly the good fraction *in ensemble average*; a single
        // realized overlay deviates (its neighbor assignment is random),
        // so average over many overlays.
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0u32;
        let mut trials = 0u32;
        for seed in 0..40 {
            let mut o = overlay(MappingDegree::ONE_TO_ONE, 600 + seed);
            let members = o.layer_members(2).to_vec();
            for &m in &members[..5] {
                o.set_status(m, NodeStatus::Congested);
            }
            for _ in 0..200 {
                trials += 1;
                if route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng)
                    .delivered
                {
                    hits += 1;
                }
            }
        }
        let empirical = hits as f64 / trials as f64;
        let expected = 1.0 - 5.0 / 15.0; // 15 nodes in layer 2, 5 bad
        assert!(
            (empirical - expected).abs() < 0.03,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn deepest_layer_reported() {
        let mut o = overlay(MappingDegree::OneTo(2), 8);
        // Kill layer 3 entirely: routes should die at depth 2.
        for &n in o.layer_members(3).to_vec().iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r = route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng);
        assert!(!r.delivered);
        assert_eq!(r.deepest_layer, 2);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(RoutingPolicy::RandomGood.to_string(), "random-good");
        assert_eq!(RoutingPolicy::FirstGood.to_string(), "first-good");
        assert_eq!(RoutingPolicy::Backtracking.to_string(), "backtracking");
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::RandomGood);
    }
}
