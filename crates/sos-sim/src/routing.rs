//! Routing a message from a client to the target through the layered
//! overlay.
//!
//! A route starts at the client's entry set (`m_1` first-layer nodes),
//! passes through one node per layer, crosses the filter ring, and — if
//! every hop finds a usable next node — reaches the target.
//!
//! The paper's equation (1) treats the per-layer failure events as
//! independent: a message at layer `i−1` fails iff *all* `m_i` of the
//! current node's neighbors are bad. That corresponds to
//! [`RoutingPolicy::RandomGood`] (pick any good neighbor, never revisit
//! an earlier choice). [`RoutingPolicy::Backtracking`] instead searches
//! the whole reachable DAG and succeeds iff *some* fully-good path
//! exists — an upper bound that quantifies how much the independence
//! assumption costs.

use crate::route_batch::ChordMemoPricer;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sos_faults::{Fallback, FaultPlan, HopIncident, RetryPolicy};
use sos_math::sampling::{shuffle, IndexSampler};
use sos_overlay::{NodeBitSet, NodeId, Overlay, Transport};

/// How a forwarding node chooses among its next-layer neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Pick a uniformly random usable neighbor; give up at a node with
    /// none. Matches the analytical model's independence assumption.
    #[default]
    RandomGood,
    /// Pick the first usable neighbor in table order. A deterministic
    /// variant that concentrates traffic (worst for load, identical
    /// success probability under exchangeable tables).
    FirstGood,
    /// Depth-first search with backtracking over the layered DAG;
    /// succeeds iff any all-good path exists. Upper-bounds both other
    /// policies.
    Backtracking,
}

impl RoutingPolicy {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RandomGood => "random-good",
            RoutingPolicy::FirstGood => "first-good",
            RoutingPolicy::Backtracking => "backtracking",
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One fault-plane or degradation incident on a route, with the hop it
/// struck (raw `u32` node ids, matching `sos-observe`'s convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteIncident {
    /// Hop sender.
    pub from: u32,
    /// Hop destination.
    pub to: u32,
    /// What happened.
    pub kind: RouteIncidentKind,
}

/// The incident payload: a hop-level fault/retry event or a
/// graceful-degradation downgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteIncidentKind {
    /// A fault-plane or retry-loop incident on a delivery attempt.
    Hop(HopIncident),
    /// Routing fell back to a degraded mode for this hop.
    Downgrade {
        /// Which degradation stage was taken.
        fallback: Fallback,
        /// Whether the degraded mode delivered the hop.
        recovered: bool,
    },
}

/// Outcome of one routing attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteResult {
    /// Whether the message reached the target (crossed the filter ring).
    pub delivered: bool,
    /// Overlay-level path actually taken (entry node … filter); for
    /// backtracking, the successful path if any, otherwise the deepest
    /// prefix explored.
    pub path: Vec<NodeId>,
    /// Underlay hops consumed (equals `path.len()` segments under direct
    /// transport; more under Chord transport).
    pub underlay_hops: usize,
    /// Deepest 1-based layer from which a usable next hop was found
    /// (`L+1` means the filter ring was reached).
    pub deepest_layer: usize,
    /// Extra delivery attempts spent by hop retries (0 without faults).
    pub retries: u64,
    /// Graceful-degradation downgrades taken (0 without faults).
    pub downgrades: u64,
    /// Simulated ticks spent on backoff, delays and slow-downs.
    pub fault_ticks: u64,
    /// Every fault/retry/downgrade incident, in hop order (empty — and
    /// unallocated — without faults).
    pub incidents: Vec<RouteIncident>,
}

impl RouteResult {
    /// Resets to the empty (undelivered) state while keeping the `path`
    /// and `incidents` allocations for reuse.
    pub(crate) fn reset(&mut self) {
        self.delivered = false;
        self.path.clear();
        self.underlay_hops = 0;
        self.deepest_layer = 0;
        self.retries = 0;
        self.downgrades = 0;
        self.fault_ticks = 0;
        self.incidents.clear();
    }
}

/// Reusable routing buffers: entry/candidate lists, the visited set for
/// backtracking, the sampling scratch, and the [`RouteResult`] itself.
///
/// One `RouteScratch` per worker lets the steady-state route loop run
/// without heap allocation under the greedy policies
/// ([`RoutingPolicy::RandomGood`] / [`RoutingPolicy::FirstGood`]);
/// backtracking still allocates its DFS frames, which is inherent to
/// reporting full exploration paths.
#[derive(Debug, Default)]
pub struct RouteScratch {
    sampler: IndexSampler,
    candidates: Vec<NodeId>,
    neighbors_buf: Vec<NodeId>,
    visited: NodeBitSet,
    result: RouteResult,
}

impl RouteScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Attempts to route one message from a fresh client through `overlay`.
///
/// The client draws `m_1` first-layer contacts, then the chosen policy
/// walks the layers. A hop from node `v` to neighbor `w` is usable when
/// `transport` can deliver it (destination good; for Chord transport all
/// intermediate hops good too).
pub fn route_message<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    rng: &mut R,
) -> RouteResult {
    route_message_with(overlay, transport, policy, None, &RetryPolicy::none(), rng)
}

/// Fault-aware routing: like [`route_message`], but every hop is
/// delivered through the fault plane with the given retry policy, and
/// fault-caused hop failures degrade gracefully — first to
/// successor-list walking on the substrate, then to an alternate
/// next-layer neighbor — with every incident recorded in
/// [`RouteResult::incidents`].
///
/// With `faults = None` this is *exactly* [`route_message`]: no fault
/// draws, no degradation paths, no incident allocation — the bit-for-bit
/// zero-fault guarantee.
pub fn route_message_with<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
) -> RouteResult {
    let mut scratch = RouteScratch::new();
    route_message_into(overlay, transport, policy, faults, retry, rng, &mut scratch).clone()
}

/// Allocation-reusing routing: identical semantics and RNG consumption
/// to [`route_message_with`], but all buffers (entry sampling,
/// candidate lists, visited set, the result itself) live in the
/// caller-owned [`RouteScratch`]. The returned reference points into the
/// scratch and is valid until the next call.
#[allow(clippy::too_many_arguments)]
pub fn route_message_into<'a, R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
    scratch: &'a mut RouteScratch,
) -> &'a RouteResult {
    route_message_hint(overlay, transport, policy, faults, retry, rng, scratch, None)
}

/// [`route_message_into`] with a precomputed substrate liveness mask.
///
/// `alive` is the Chord ring's position-indexed liveness bitset (see
/// [`Transport::refresh_alive_positions`]): the trial runner computes it
/// once per attacked overlay and every substrate lookup on every route
/// of that trial probes the shared `u64` words instead of re-deriving
/// per-node status through the overlay. With `alive = None` (or a
/// non-Chord transport) this is exactly [`route_message_into`] — same
/// results, same RNG consumption.
#[allow(clippy::too_many_arguments)]
pub fn route_message_hint<'a, R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
    scratch: &'a mut RouteScratch,
    alive: Option<&NodeBitSet>,
) -> &'a RouteResult {
    route_message_hint_priced(
        overlay, transport, policy, faults, retry, rng, scratch, alive, None,
    )
}

/// [`route_message_hint`] with an optional memo-backed Chord substrate
/// pricer (see [`ChordMemoPricer`]): identical semantics and RNG/fault
/// draw consumption — pricing is pure, so memoizing it cannot shift the
/// plan's counted streams — used by the batched kernel's faulted oracle
/// path to share the per-trial hop memo across lanes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_message_hint_priced<'a, R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
    scratch: &'a mut RouteScratch,
    alive: Option<&NodeBitSet>,
    mut pricer: Option<&mut ChordMemoPricer<'_>>,
) -> &'a RouteResult {
    let last_layer = overlay.layer_count() + 1; // filters
    {
        let RouteScratch {
            sampler,
            candidates,
            neighbors_buf,
            visited,
            result,
        } = scratch;
        overlay.sample_entry_points_into(rng, sampler, candidates);
        result.reset();
        match policy {
            RoutingPolicy::RandomGood | RoutingPolicy::FirstGood => greedy_route(
                overlay,
                transport,
                policy,
                candidates,
                last_layer,
                faults,
                retry,
                rng,
                result,
                alive,
                pricer.as_deref_mut(),
            ),
            RoutingPolicy::Backtracking => backtracking_route(
                overlay,
                transport,
                candidates,
                neighbors_buf,
                visited,
                last_layer,
                faults,
                retry,
                rng,
                result,
                alive,
                pricer,
            ),
        }
    }
    &scratch.result
}

/// One fault-ladder hop delivery, routed through the memo-backed pricer
/// when one is installed (Chord + trial-stable mask only; see
/// [`Transport::deliver_with_hint_priced`] for the contract).
#[allow(clippy::too_many_arguments)]
fn deliver_priced(
    transport: &Transport,
    overlay: &Overlay,
    from: NodeId,
    to: NodeId,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    alive: Option<&NodeBitSet>,
    pricer: Option<&mut ChordMemoPricer<'_>>,
) -> sos_overlay::transport::HopDelivery {
    match pricer {
        Some(p) => transport.deliver_with_hint_priced(
            overlay,
            from,
            to,
            faults,
            retry,
            alive,
            Some(&mut |f, t| p.price(overlay, f, t)),
        ),
        None => transport.deliver_with_hint(overlay, from, to, faults, retry, alive),
    }
}

#[allow(clippy::too_many_arguments)]
fn greedy_route<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    candidates: &mut Vec<NodeId>,
    last_layer: usize,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
    result: &mut RouteResult,
    alive: Option<&NodeBitSet>,
    mut pricer: Option<&mut ChordMemoPricer<'_>>,
) {
    // `candidates` are the potential nodes at the next layer (initially
    // the client's entry set); the "client hop" into layer 1 is a plain
    // reachability check (clients talk to SOAPs directly).
    let mut current: Option<NodeId> = None;
    loop {
        if policy == RoutingPolicy::RandomGood {
            shuffle(rng, candidates);
        }
        let mut next = None;
        // Set when the previous candidate at this layer failed for a
        // *fault* (not a compromise): trying the next candidate is the
        // alternate-neighbor degradation stage and is recorded as such.
        let mut fault_failed_prev = false;
        for &cand in candidates.iter() {
            match current {
                None => {
                    // Client → first layer: direct contact. Benign
                    // crashes make the contact unreachable; loss/delay
                    // are modelled only on overlay hops.
                    if overlay.is_good(cand)
                        && faults.is_none_or(|p| !p.is_crashed(cand.0))
                    {
                        next = Some((cand, 1usize));
                        break;
                    }
                }
                Some(v) => {
                    let hop = deliver_priced(
                        transport,
                        overlay,
                        v,
                        cand,
                        faults,
                        retry,
                        alive,
                        pricer.as_deref_mut(),
                    );
                    result.retries += u64::from(hop.attempts.saturating_sub(1));
                    result.fault_ticks += hop.ticks;
                    for incident in &hop.incidents {
                        result.incidents.push(RouteIncident {
                            from: v.0,
                            to: cand.0,
                            kind: RouteIncidentKind::Hop(*incident),
                        });
                    }
                    if let sos_overlay::transport::DeliveryOutcome::Delivered { hops } =
                        hop.outcome
                    {
                        if fault_failed_prev {
                            result.downgrades += 1;
                            result.incidents.push(RouteIncident {
                                from: v.0,
                                to: cand.0,
                                kind: RouteIncidentKind::Downgrade {
                                    fallback: Fallback::AlternateNeighbor,
                                    recovered: true,
                                },
                            });
                        }
                        next = Some((cand, hops));
                        break;
                    }
                    // Hop failed. Degradation only applies to *fault*
                    // failures (destination good and not crashed) and
                    // only when the fault plane is active at all.
                    let fault_failure = faults.is_some_and(|p| {
                        overlay.is_good(cand) && !p.is_crashed(cand.0)
                    });
                    if fault_failure {
                        // Stage 1: successor-list walking.
                        let walked =
                            transport.deliver_degraded_hint(overlay, v, cand, faults, alive);
                        let recovered = walked.is_delivered();
                        result.downgrades += 1;
                        result.incidents.push(RouteIncident {
                            from: v.0,
                            to: cand.0,
                            kind: RouteIncidentKind::Downgrade {
                                fallback: Fallback::SuccessorWalk,
                                recovered,
                            },
                        });
                        if let sos_overlay::transport::DeliveryOutcome::Delivered { hops } =
                            walked
                        {
                            next = Some((cand, hops));
                            break;
                        }
                        // Stage 2: the loop's next candidate is the
                        // alternate next-layer neighbor.
                        fault_failed_prev = true;
                    }
                }
            }
        }
        if next.is_none() && fault_failed_prev {
            // Every alternate neighbor was exhausted too.
            result.downgrades += 1;
            if let Some(v) = current {
                result.incidents.push(RouteIncident {
                    from: v.0,
                    to: v.0,
                    kind: RouteIncidentKind::Downgrade {
                        fallback: Fallback::AlternateNeighbor,
                        recovered: false,
                    },
                });
            }
        }
        let Some((node, hops)) = next else {
            return;
        };
        result.underlay_hops += hops;
        result.path.push(node);
        let layer = overlay
            .layer_of(node)
            .expect("routed nodes are always infrastructure");
        result.deepest_layer = layer;
        if layer == last_layer {
            result.delivered = true;
            return;
        }
        candidates.clear();
        candidates.extend_from_slice(overlay.neighbors(node));
        current = Some(node);
    }
}

#[allow(clippy::too_many_arguments)]
fn backtracking_route<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    entries: &mut Vec<NodeId>,
    neighbors_buf: &mut Vec<NodeId>,
    visited: &mut NodeBitSet,
    last_layer: usize,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    rng: &mut R,
    result: &mut RouteResult,
    alive: Option<&NodeBitSet>,
    mut pricer: Option<&mut ChordMemoPricer<'_>>,
) {
    shuffle(rng, entries);
    visited.clear();
    let mut best_prefix_hops = 0usize;

    // Explicit DFS stack; each frame carries the path and its underlay
    // cost so the delivered result reports the *path's* hops, not the
    // total exploration cost. The DFS explores alternate neighbors by
    // construction, so no explicit degradation stages apply here —
    // retries still do, per edge.
    struct Frame {
        node: NodeId,
        path: Vec<NodeId>,
        hops: usize,
    }
    let mut stack: Vec<Frame> = entries
        .drain(..)
        .filter(|&e| {
            overlay.is_good(e) && faults.is_none_or(|p| !p.is_crashed(e.0))
        })
        .map(|e| Frame {
            node: e,
            path: vec![e],
            hops: 1, // client → entry contact
        })
        .collect();

    while let Some(Frame { node, path, hops }) = stack.pop() {
        if !visited.insert(node) {
            continue;
        }
        let layer = overlay
            .layer_of(node)
            .expect("routed nodes are always infrastructure");
        if layer > result.deepest_layer {
            result.deepest_layer = layer;
            result.path.clear();
            result.path.extend_from_slice(&path);
            best_prefix_hops = hops;
        }
        if layer == last_layer {
            result.delivered = true;
            result.underlay_hops = hops;
            result.path.clear();
            result.path.extend_from_slice(&path);
            return;
        }
        neighbors_buf.clear();
        neighbors_buf.extend_from_slice(overlay.neighbors(node));
        shuffle(rng, neighbors_buf);
        for &next in neighbors_buf.iter() {
            if visited.contains(next) {
                continue;
            }
            let hop = deliver_priced(
                transport,
                overlay,
                node,
                next,
                faults,
                retry,
                alive,
                pricer.as_deref_mut(),
            );
            result.retries += u64::from(hop.attempts.saturating_sub(1));
            result.fault_ticks += hop.ticks;
            for incident in &hop.incidents {
                result.incidents.push(RouteIncident {
                    from: node.0,
                    to: next.0,
                    kind: RouteIncidentKind::Hop(*incident),
                });
            }
            if let sos_overlay::transport::DeliveryOutcome::Delivered { hops: edge } =
                hop.outcome
            {
                let mut next_path = path.clone();
                next_path.push(next);
                stack.push(Frame {
                    node: next,
                    path: next_path,
                    hops: hops + edge,
                });
            }
        }
    }
    result.underlay_hops = best_prefix_hops;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};
    use sos_faults::FaultConfig;
    use sos_overlay::NodeStatus;

    fn overlay(mapping: MappingDegree, seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(500, 45, 0.5).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    #[test]
    fn clean_overlay_always_delivers() {
        let o = overlay(MappingDegree::OneTo(2), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            for _ in 0..50 {
                let r = route_message(&o, &Transport::Direct, policy, &mut rng);
                assert!(r.delivered, "{policy} failed on a clean overlay");
                // Path: layer1, layer2, layer3, filter.
                assert_eq!(r.path.len(), 4);
                assert_eq!(r.deepest_layer, 4);
                assert_eq!(r.underlay_hops, 4);
            }
        }
    }

    #[test]
    fn fully_congested_layer_blocks_everything() {
        let mut o = overlay(MappingDegree::OneTo(2), 3);
        for &n in o.layer_members(2).to_vec().iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let mut rng = StdRng::seed_from_u64(4);
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            for _ in 0..20 {
                let r = route_message(&o, &Transport::Direct, policy, &mut rng);
                assert!(!r.delivered, "{policy} slipped through a dead layer");
                assert!(r.deepest_layer <= 1);
            }
        }
    }

    #[test]
    fn backtracking_dominates_greedy() {
        // Damage the overlay heavily; backtracking must succeed at least
        // as often as random-good on the same damage pattern.
        let mut rng = StdRng::seed_from_u64(5);
        let mut greedy_wins = 0u32;
        let mut backtrack_wins = 0u32;
        for seed in 0..30 {
            let mut o = overlay(MappingDegree::OneTo(3), 100 + seed);
            // Congest 40% of each SOS layer.
            for layer in 1..=3 {
                let members = o.layer_members(layer).to_vec();
                let k = members.len() * 2 / 5;
                for &m in &members[..k] {
                    o.set_status(m, NodeStatus::Congested);
                }
            }
            let mut g = 0u32;
            let mut b = 0u32;
            for _ in 0..40 {
                if route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng)
                    .delivered
                {
                    g += 1;
                }
                if route_message(
                    &o,
                    &Transport::Direct,
                    RoutingPolicy::Backtracking,
                    &mut rng,
                )
                .delivered
                {
                    b += 1;
                }
            }
            greedy_wins += g;
            backtrack_wins += b;
        }
        assert!(
            backtrack_wins >= greedy_wins,
            "backtracking {backtrack_wins} < greedy {greedy_wins}"
        );
    }

    #[test]
    fn random_good_failure_rate_matches_analytic_one_to_one() {
        // One-to-one mapping, exactly one path per client: P_S per hop is
        // exactly the good fraction *in ensemble average*; a single
        // realized overlay deviates (its neighbor assignment is random),
        // so average over many overlays.
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0u32;
        let mut trials = 0u32;
        for seed in 0..40 {
            let mut o = overlay(MappingDegree::ONE_TO_ONE, 600 + seed);
            let members = o.layer_members(2).to_vec();
            for &m in &members[..5] {
                o.set_status(m, NodeStatus::Congested);
            }
            for _ in 0..200 {
                trials += 1;
                if route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng)
                    .delivered
                {
                    hits += 1;
                }
            }
        }
        let empirical = hits as f64 / trials as f64;
        let expected = 1.0 - 5.0 / 15.0; // 15 nodes in layer 2, 5 bad
        assert!(
            (empirical - expected).abs() < 0.03,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn deepest_layer_reported() {
        let mut o = overlay(MappingDegree::OneTo(2), 8);
        // Kill layer 3 entirely: routes should die at depth 2.
        for &n in o.layer_members(3).to_vec().iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r = route_message(&o, &Transport::Direct, RoutingPolicy::RandomGood, &mut rng);
        assert!(!r.delivered);
        assert_eq!(r.deepest_layer, 2);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(RoutingPolicy::RandomGood.to_string(), "random-good");
        assert_eq!(RoutingPolicy::FirstGood.to_string(), "first-good");
        assert_eq!(RoutingPolicy::Backtracking.to_string(), "backtracking");
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::RandomGood);
    }

    #[test]
    fn no_plan_is_exactly_the_clean_path() {
        // `route_message_with(…, None, …)` must be bit-identical to
        // `route_message` — same rng consumption, same result, zero
        // fault bookkeeping — even with an aggressive retry policy.
        let o = overlay(MappingDegree::OneTo(2), 21);
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            let mut a = StdRng::seed_from_u64(22);
            let mut b = StdRng::seed_from_u64(22);
            for _ in 0..30 {
                let plain = route_message(&o, &Transport::Direct, policy, &mut a);
                let faulted = route_message_with(
                    &o,
                    &Transport::Direct,
                    policy,
                    None,
                    &RetryPolicy::new(8, 2, 1_000),
                    &mut b,
                );
                assert_eq!(plain, faulted);
                assert_eq!(faulted.retries, 0);
                assert_eq!(faulted.downgrades, 0);
                assert_eq!(faulted.fault_ticks, 0);
                assert!(faulted.incidents.is_empty());
            }
        }
    }

    #[test]
    fn loss_faults_hurt_and_retries_recover() {
        // On a clean overlay every failure is fault-caused, so delivery
        // under loss without retries must drop below 1, and retries at
        // the same seeds must strictly recover deliveries.
        let o = overlay(MappingDegree::OneTo(2), 23);
        let cfg = FaultConfig::none().loss(0.4).seed(7);
        let count = |retry: RetryPolicy| {
            let mut rng = StdRng::seed_from_u64(24);
            let mut delivered = 0u32;
            let mut retries = 0u64;
            for trial in 0..120u64 {
                let plan = FaultPlan::new(&cfg, trial);
                let r = route_message_with(
                    &o,
                    &Transport::Direct,
                    RoutingPolicy::FirstGood,
                    Some(&plan),
                    &retry,
                    &mut rng,
                );
                delivered += u32::from(r.delivered);
                retries += r.retries;
            }
            (delivered, retries)
        };
        let (bare, r0) = count(RetryPolicy::none());
        let (retried, r1) = count(RetryPolicy::new(6, 1, 256));
        assert_eq!(r0, 0);
        assert!(r1 > 0, "retry policy should spend retries under loss");
        assert!(bare < 120, "40% loss must fail some routes: {bare}");
        assert!(
            retried > bare,
            "retries must recover transient losses: {retried} vs {bare}"
        );
    }

    #[test]
    fn fault_incidents_and_downgrades_are_recorded() {
        let o = overlay(MappingDegree::OneTo(3), 25);
        let cfg = FaultConfig::none().loss(0.5).delay(0.5, 3).seed(11);
        let mut rng = StdRng::seed_from_u64(26);
        let mut saw_loss = false;
        let mut saw_delay = false;
        let mut saw_downgrade = false;
        for trial in 0..60u64 {
            let plan = FaultPlan::new(&cfg, trial);
            let r = route_message_with(
                &o,
                &Transport::Direct,
                RoutingPolicy::RandomGood,
                Some(&plan),
                &RetryPolicy::none(),
                &mut rng,
            );
            for i in &r.incidents {
                match i.kind {
                    RouteIncidentKind::Hop(HopIncident::Loss { .. }) => saw_loss = true,
                    RouteIncidentKind::Hop(HopIncident::Delay { ticks }) => {
                        saw_delay = true;
                        assert_eq!(ticks, 3);
                    }
                    RouteIncidentKind::Downgrade { .. } => saw_downgrade = true,
                    _ => {}
                }
            }
            assert_eq!(
                r.downgrades,
                r.incidents
                    .iter()
                    .filter(|i| matches!(i.kind, RouteIncidentKind::Downgrade { .. }))
                    .count() as u64,
            );
            if r.fault_ticks > 0 {
                saw_delay = true;
            }
        }
        assert!(saw_loss, "50% loss should surface Loss incidents");
        assert!(saw_delay, "50% delay should surface Delay incidents");
        // Direct transport has no successor lists, so a lost hop walks
        // the degradation ladder to the alternate-neighbor stage.
        assert!(saw_downgrade, "losses without retries should downgrade");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_routing() {
        // One reused RouteScratch across many routes, policies, damage
        // patterns and fault plans must consume the RNG and produce
        // results exactly like the allocating entry point.
        let mut o = overlay(MappingDegree::OneTo(2), 31);
        for &n in o.layer_members(2).to_vec()[..5].iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let cfg = FaultConfig::none().loss(0.3).delay(0.2, 2).seed(5);
        let mut scratch = RouteScratch::new();
        for policy in [
            RoutingPolicy::RandomGood,
            RoutingPolicy::FirstGood,
            RoutingPolicy::Backtracking,
        ] {
            let mut a = StdRng::seed_from_u64(32);
            let mut b = StdRng::seed_from_u64(32);
            for trial in 0..40u64 {
                // The plan's draw counters are stateful (interior
                // mutability), so each side gets its own copy.
                let plan_a = (trial % 2 == 0).then(|| FaultPlan::new(&cfg, trial));
                let plan_b = (trial % 2 == 0).then(|| FaultPlan::new(&cfg, trial));
                let retry = RetryPolicy::new(3, 1, 128);
                let fresh = route_message_with(
                    &o,
                    &Transport::Direct,
                    policy,
                    plan_a.as_ref(),
                    &retry,
                    &mut a,
                );
                let reused = route_message_into(
                    &o,
                    &Transport::Direct,
                    policy,
                    plan_b.as_ref(),
                    &retry,
                    &mut b,
                    &mut scratch,
                );
                assert_eq!(&fresh, reused, "{policy} trial {trial}");
                assert_eq!(a.gen::<u64>(), b.gen::<u64>());
            }
        }
    }

    #[test]
    fn crashed_entry_points_are_avoided() {
        // Crash faults make nodes unreachable for routing; with every
        // entry crashed no route can start.
        let o = overlay(MappingDegree::OneTo(2), 27);
        let cfg = FaultConfig::none().crash(1.0).seed(13);
        let plan = FaultPlan::new(&cfg, 0);
        let mut rng = StdRng::seed_from_u64(28);
        for policy in [RoutingPolicy::RandomGood, RoutingPolicy::Backtracking] {
            let r = route_message_with(
                &o,
                &Transport::Direct,
                policy,
                Some(&plan),
                &RetryPolicy::new(4, 1, 64),
                &mut rng,
            );
            assert!(!r.delivered);
            assert_eq!(r.deepest_layer, 0);
            assert_eq!(r.retries, 0, "crashes are permanent, never retried");
        }
    }
}
