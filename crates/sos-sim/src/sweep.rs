//! Cross-scenario sweep executor: persistent pool + content-addressed
//! result cache.
//!
//! Every figure family in `sos-bench` is a *sweep*: dozens of small
//! [`SimulationConfig`] points that differ in one or two knobs. Running
//! them as independent [`Simulation::run_parallel`] calls pays three
//! avoidable costs per point — thread spawn/join, cold per-worker
//! [`TrialScratch`](crate::engine) state, and re-running points that an
//! overlapping panel already computed (e.g. every budget sweep shares
//! its zero-budget baseline). The [`SweepExecutor`] removes all three:
//!
//! * all points of a sweep are submitted to the persistent
//!   `crate::pool` as one job list, so workers interleave trial
//!   batches across sweep points and reuse their scratch across
//!   *scenarios*, not just trials;
//! * each config is reduced to a content fingerprint (a stable 64-bit
//!   hash of every behavior-relevant field); identical points are
//!   executed once per process (*dedup*), and — with a cache file
//!   attached — once ever (*cache*);
//! * results are returned in input order and are the same values
//!   [`Simulation::run_parallel`] produces: integer counts bit-identical
//!   at any thread count, float aggregates within merge-order ulps.
//!
//! Cache semantics: the cache is keyed by content, not by call site, so
//! it is safe to share one cache file across figure families, CLI runs
//! and report builds. A cache hit returns the stored
//! [`SimulationResult`] verbatim (bit-for-bit: JSON floats round-trip
//! exactly), so warm runs reproduce cold CSV output byte-identically.
//!
//! Crash safety: every executed point is appended (and fsynced) to a
//! sidecar journal (`<cache>.journal`) the moment its result exists,
//! and the main file is only ever replaced atomically (temp + fsync +
//! rename) — by [`SweepExecutor::persist`] or when the journal grows
//! past a compaction threshold. Every persisted entry carries a
//! checksum; at [`SweepExecutor::attach_cache`] a damaged file is
//! quarantined to `<path>.corrupt` and damaged entries are skipped, so
//! a torn or bit-flipped cache can cost recomputation but never a
//! wrong warm answer.
//! The fingerprint folds in the master seed, trial/route counts, and
//! the full fault/retry configuration — any change to an experiment's
//! inputs misses the cache rather than aliasing a stale entry. Inert
//! knobs are canonicalized away (a no-fault config fingerprints
//! identically regardless of its fault seed or retry policy, which are
//! unobservable without faults).
//!
//! Use the process-global executor via [`run_sweep`] /
//! [`set_global_cache`] (or the `SOS_SWEEP_CACHE` environment
//! variable), or construct a private [`SweepExecutor`] for isolated
//! thread counts and caches (as `bench_baseline` and the tests do).
//!
//! [`Simulation::run_parallel`]: crate::engine::Simulation::run_parallel

use crate::engine::{Simulation, SimulationConfig, SimulationResult};
use crate::pool::{global_pool, RangeJob, WorkerPool};
use sos_observe::{telemetry, trace};
use sos_observe::{Event, EventKind, MetricsRegistry, Recorder};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cumulative executor counters, exposed for benchmarks and the CLI's
/// `--cache` reporting (and mirrored into `sos-observe` metrics by
/// [`SweepExecutor::run_traced`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweep points requested (one per input config, duplicates
    /// included).
    pub points: u64,
    /// Points answered from the cache (loaded file entries or results
    /// computed by an earlier run of this executor).
    pub cache_hits: u64,
    /// Points answered by another point of the *same* run with an equal
    /// fingerprint.
    pub dedup_hits: u64,
    /// Points actually executed.
    pub points_executed: u64,
    /// Trials actually executed.
    pub trials_executed: u64,
    /// Trial batches pulled from the pool's queues (scheduling
    /// granularity; at least one per executed point).
    pub pool_batches: u64,
}

/// FNV-1a 64-bit over the canonical byte encoding of a config.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Content fingerprint of a config (public alias of the executor's
/// internal hash): equal fingerprints ⇒ equal simulation
/// behavior, so long-running services can report which cache entry
/// answered a request and deduplicate identical requests for free.
pub fn config_fingerprint(config: &SimulationConfig) -> u64 {
    fingerprint(config)
}

/// *Structural* fingerprint of a config: the part that determines what
/// the trial runner has to **build** — the scenario (overlay size, SOS
/// membership, layers, mapping degree, filters) and the transport
/// substrate. Everything else (attack, policy, faults, trial/route
/// counts) only decides what happens *to* a built overlay.
///
/// Two sweep points with equal structural fingerprints and equal master
/// seeds construct bit-identical overlays/rings at every trial index,
/// which is exactly the condition under which the engine's per-worker
/// build memo may answer a trial without rebuilding. Services can use
/// this to group requests by build-compatibility.
pub fn structural_fingerprint(config: &SimulationConfig) -> u64 {
    let mut canon = String::new();
    canon.push_str(
        &serde_json::to_string(&config.scenario).expect("scenario serializes"),
    );
    canon.push('|');
    canon.push_str(config.transport.label());
    fnv1a(canon.as_bytes(), 0xCBF2_9CE4_8422_2325)
}

/// Content fingerprint of a config: equal fingerprints ⇒ equal
/// simulation behavior (same result for the same engine version).
///
/// Split into a *structural* part ([`structural_fingerprint`]: the
/// scenario and transport — what gets built) folded together with the
/// attack/fault part (what happens to the build). Scenario, attack and
/// policy are folded in via their canonical JSON encoding (stable field
/// order — serde derives emit fields in declaration order); scalar
/// knobs are folded in as exact bit patterns, so float knobs that
/// differ in the last ulp still get distinct fingerprints.
fn fingerprint(config: &SimulationConfig) -> u64 {
    let mut canon = format!("s:{:016x}", structural_fingerprint(config));
    canon.push('|');
    canon.push_str(&serde_json::to_string(&config.attack).expect("attack serializes"));
    canon.push('|');
    canon.push_str(&serde_json::to_string(&config.policy).expect("policy serializes"));
    canon.push_str(&format!(
        "|{}|{}|{}",
        config.trials, config.routes_per_trial, config.seed
    ));
    match config.monitoring_tap {
        // Bit pattern, not decimal: fingerprints must separate taps that
        // differ below printing precision.
        Some(tap) => canon.push_str(&format!("|tap:{:016x}", tap.to_bits())),
        None => canon.push_str("|tap:none"),
    }
    if config.faults.is_none() {
        // No fault plane is built, so the fault seed and the retry
        // policy are unobservable — canonicalize them away so
        // equivalent configs share a cache entry (`sos-faults` tests
        // pin this invariant).
        canon.push_str("|faults:none");
    } else {
        let f = &config.faults;
        canon.push_str(&format!(
            "|faults:{:016x},{:016x},{},{:016x},{:016x},{},{:016x},{}",
            f.loss_rate.to_bits(),
            f.delay_rate.to_bits(),
            f.delay_ticks,
            f.crash_rate.to_bits(),
            f.slow_rate.to_bits(),
            f.slow_ticks,
            f.misroute_rate.to_bits(),
            f.seed,
        ));
        let r = &config.retry;
        canon.push_str(&format!(
            "|retry:{},{},{}",
            r.max_attempts, r.backoff_base, r.deadline
        ));
    }
    fnv1a(canon.as_bytes(), 0xCBF2_9CE4_8422_2325)
}

/// On-disk cache layout (JSON). Fingerprints are hex strings because
/// JSON numbers cannot carry 64 bits losslessly through every tool.
#[derive(serde::Serialize, serde::Deserialize)]
struct CacheFile {
    version: u32,
    entries: Vec<CacheEntry>,
}

/// One persisted result. `checksum` covers the fingerprint and the
/// result's canonical JSON encoding, so a torn write or a flipped bit
/// is detected at load and the entry is *skipped* (and the damaged
/// file quarantined) instead of poisoning warm answers.
#[derive(serde::Serialize, serde::Deserialize)]
struct CacheEntry {
    fingerprint: String,
    checksum: String,
    result: SimulationResult,
}

/// Version 4: message routing moved off the shared attack stream onto
/// per-route `ROUTE` sub-streams (`sos_sim::route_lane_seed`, the
/// batched route kernel's lane seeds), so every Monte Carlo routing
/// result changed — version-3 entries would alias stale results under
/// matching fingerprints and are quarantined instead. (Version 3 moved
/// the trial streams to splitmix64-keyed sub-streams; version 2 added
/// per-entry checksums; version-1 files carried none.) The cache is
/// derived data; a quarantined file only costs recomputation.
const CACHE_VERSION: u32 = 4;

/// Journal entries accumulated before the executor folds them into a
/// full atomic rewrite of the main cache file. Keeps the per-point
/// durability cost O(1) instead of O(cache size).
const JOURNAL_COMPACT_THRESHOLD: usize = 512;

/// Integrity checksum of one cache entry: FNV-1a over
/// `fingerprint | canonical-result-JSON`. Results round-trip through
/// JSON bit-for-bit (a pinned invariant of this module), so the
/// re-serialized form at load equals the serialized form at store time
/// if and only if the bytes survived intact.
fn entry_checksum(fingerprint: &str, result: &SimulationResult) -> String {
    let json = serde_json::to_string(result).expect("result serializes");
    let mut hash = fnv1a(fingerprint.as_bytes(), 0x6A09_E667_F3BC_C908);
    hash = fnv1a(b"|", hash);
    hash = fnv1a(json.as_bytes(), hash);
    format!("{hash:016x}")
}

/// The append-mode journal sitting next to a cache file: one JSON
/// entry per line, appended (and fsynced) as each sweep point
/// completes, so results are durable immediately — not only when the
/// owner drains and rewrites the main file.
fn journal_path(cache: &Path) -> PathBuf {
    let mut os = cache.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Where a damaged cache (or journal) file is moved/copied so an
/// operator can diff what was lost instead of silently losing it.
fn corrupt_path(original: &Path) -> PathBuf {
    let mut os = original.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// Decodes and verifies one cache entry; `None` when the fingerprint
/// does not parse or the checksum does not match the stored result.
fn decode_entry(entry: &CacheEntry) -> Option<(u64, SimulationResult)> {
    let fp = u64::from_str_radix(&entry.fingerprint, 16).ok()?;
    if entry.checksum != entry_checksum(&entry.fingerprint, &entry.result) {
        return None;
    }
    Some((fp, entry.result.clone()))
}

/// What [`SweepExecutor::attach_cache_report`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheLoadReport {
    /// Entries loaded from the main cache file.
    pub loaded: usize,
    /// Entries recovered from the append journal (results that were
    /// executed after the last full rewrite — e.g. by a process that
    /// crashed before draining).
    pub journal_recovered: usize,
    /// Entries (or journal lines) dropped because their checksum did
    /// not verify or their encoding was damaged.
    pub skipped: usize,
    /// Set when a damaged file was quarantined for inspection.
    pub quarantined: Option<PathBuf>,
}

/// The pool a [`SweepExecutor`] schedules on: the process-global pool
/// (shared scratch, shared threads) or a private one (benchmarks and
/// tests that must control the thread count).
enum PoolHandle {
    Global,
    Owned(Box<WorkerPool>),
}

/// Executes sweeps of [`SimulationConfig`] points; see the module docs.
pub struct SweepExecutor {
    pool: PoolHandle,
    /// fingerprint → result, for every point this executor has answered
    /// (loaded from the cache file or executed).
    memory: HashMap<u64, SimulationResult>,
    cache_path: Option<PathBuf>,
    stats: SweepStats,
    /// Journal lines written (or replayed) since the last full rewrite.
    journal_entries: usize,
    /// What the last [`attach_cache`](Self::attach_cache) found.
    load_report: CacheLoadReport,
    /// When the main cache file was last rewritten in full.
    last_persist: Option<Instant>,
}

impl SweepExecutor {
    /// An executor on the process-global worker pool (sized by
    /// [`num_threads`](crate::engine::num_threads)).
    pub fn new() -> Self {
        SweepExecutor {
            pool: PoolHandle::Global,
            memory: HashMap::new(),
            cache_path: None,
            stats: SweepStats::default(),
            journal_entries: 0,
            load_report: CacheLoadReport::default(),
            last_persist: None,
        }
    }

    /// An executor with a *private* pool of exactly `threads` workers —
    /// for benchmarks and determinism tests that pin the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            pool: PoolHandle::Owned(Box::new(WorkerPool::new(threads))),
            ..SweepExecutor::new()
        }
    }

    /// Attaches a persistent cache file and loads any existing entries,
    /// then replays the append journal sitting next to it. Returns the
    /// total number of entries loaded (0 when neither file exists yet —
    /// that is a cold cache, not an error).
    ///
    /// Damaged state never refuses service and never poisons answers:
    /// an unparseable cache file (or one with an unknown version) is
    /// renamed to `<path>.corrupt` and the executor starts cold from
    /// whatever the journal can recover; an entry whose checksum fails
    /// is skipped (and the file copied to `<path>.corrupt` for
    /// inspection); a torn trailing journal line — the expected residue
    /// of a crash mid-append — is dropped silently.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (permissions, hardware) propagate.
    pub fn attach_cache(&mut self, path: impl AsRef<Path>) -> io::Result<usize> {
        let report = self.attach_cache_report(path)?;
        Ok(report.loaded + report.journal_recovered)
    }

    /// [`attach_cache`](Self::attach_cache) with the full breakdown of
    /// what was loaded, recovered, skipped, and quarantined.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (permissions, hardware) propagate.
    pub fn attach_cache_report(&mut self, path: impl AsRef<Path>) -> io::Result<CacheLoadReport> {
        let path = path.as_ref();
        let mut report = CacheLoadReport::default();
        // Read as bytes, not `read_to_string`: bit rot can make a file
        // invalid UTF-8, and that is damage to quarantine (the lossy
        // replacement characters fail the JSON parse or the per-entry
        // checksum), not an I/O error to refuse startup over.
        match std::fs::read(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(bytes) => {
                self.load_main_file(path, &String::from_utf8_lossy(&bytes), &mut report)
            }
        }
        let journal = journal_path(path);
        match std::fs::read(&journal) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(bytes) => {
                self.load_journal(&journal, &String::from_utf8_lossy(&bytes), &mut report)
            }
        }
        self.cache_path = Some(path.to_path_buf());
        self.load_report = report.clone();
        Ok(report)
    }

    /// Loads the main cache file, quarantining damage instead of
    /// propagating it.
    fn load_main_file(&mut self, path: &Path, text: &str, report: &mut CacheLoadReport) {
        let file: CacheFile = match serde_json::from_str(text) {
            Ok(f) => f,
            Err(e) => {
                self.quarantine_rename(path, report, &format!("does not parse ({e})"));
                return;
            }
        };
        if file.version != CACHE_VERSION {
            self.quarantine_rename(
                path,
                report,
                &format!("has version {}, expected {CACHE_VERSION}", file.version),
            );
            return;
        }
        let mut bad = 0usize;
        for entry in &file.entries {
            match decode_entry(entry) {
                Some((fp, result)) => {
                    self.memory.insert(fp, result);
                    report.loaded += 1;
                }
                None => bad += 1,
            }
        }
        if bad > 0 {
            report.skipped += bad;
            // Keep the good entries (they verified), but preserve the
            // damaged original for diffing before a rewrite replaces it.
            let corrupt = corrupt_path(path);
            if std::fs::write(&corrupt, text).is_ok() {
                report.quarantined = Some(corrupt.clone());
            }
            eprintln!(
                "warning: sweep cache {}: {bad} of {} entries failed checksum; \
                 skipped (original copied to {})",
                path.display(),
                file.entries.len(),
                corrupt.display(),
            );
        }
    }

    /// Replays the append journal: every line that parses and verifies
    /// is an entry some earlier process executed but never folded into
    /// the main file (e.g. it crashed mid-sweep).
    fn load_journal(&mut self, journal: &Path, text: &str, report: &mut CacheLoadReport) {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut bad_lines: Vec<usize> = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let decoded = serde_json::from_str::<CacheEntry>(line)
                .ok()
                .and_then(|entry| decode_entry(&entry));
            match decoded {
                Some((fp, result)) => {
                    if self.memory.insert(fp, result).is_none() {
                        report.journal_recovered += 1;
                    }
                    self.journal_entries += 1;
                }
                None => bad_lines.push(i),
            }
        }
        report.skipped += bad_lines.len();
        // A bad *final* line is the expected residue of a crash mid-
        // append (a torn write); a bad line with valid lines after it
        // is real corruption worth quarantining for inspection.
        if bad_lines.iter().any(|&i| i + 1 < lines.len()) {
            let corrupt = corrupt_path(journal);
            if std::fs::write(&corrupt, text).is_ok() {
                report.quarantined = Some(corrupt.clone());
            }
            eprintln!(
                "warning: sweep-cache journal {}: {} damaged lines skipped \
                 (copy kept at {})",
                journal.display(),
                bad_lines.len(),
                corrupt.display(),
            );
        } else if !bad_lines.is_empty() {
            eprintln!(
                "warning: sweep-cache journal {}: dropped a torn trailing entry \
                 (crash mid-append); {} entries recovered",
                journal.display(),
                report.journal_recovered,
            );
        }
    }

    /// Moves a damaged file to `<path>.corrupt` and says what was lost.
    fn quarantine_rename(&self, path: &Path, report: &mut CacheLoadReport, reason: &str) {
        let corrupt = corrupt_path(path);
        match std::fs::rename(path, &corrupt) {
            Ok(()) => {
                report.quarantined = Some(corrupt.clone());
                eprintln!(
                    "warning: sweep cache {} {reason}; quarantined to {} \
                     (entries will be recomputed; diff the quarantine file to see what was lost)",
                    path.display(),
                    corrupt.display(),
                );
            }
            Err(e) => eprintln!(
                "warning: sweep cache {} {reason}; quarantine rename failed ({e}); running cold",
                path.display(),
            ),
        }
    }

    /// Counters accumulated over this executor's lifetime.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Number of results this executor can answer without executing
    /// (loaded cache entries plus points computed so far).
    pub fn cached_points(&self) -> usize {
        self.memory.len()
    }

    /// What the last [`attach_cache`](Self::attach_cache) loaded,
    /// recovered, skipped, and quarantined.
    pub fn load_report(&self) -> &CacheLoadReport {
        &self.load_report
    }

    /// Time since the main cache file was last rewritten in full
    /// (`None` before the first rewrite — journal appends do not
    /// count; they are durable but not compacted).
    pub fn last_persist_age(&self) -> Option<Duration> {
        self.last_persist.map(|at| at.elapsed())
    }

    /// Rewrites the attached cache file now, atomically (write to a
    /// temp file, fsync, rename), and truncates the journal the
    /// rewrite absorbed. No-op without an attached cache.
    ///
    /// [`run`](Self::run) already journals every executed point as it
    /// completes; this exists for owners with an explicit lifecycle —
    /// a resident service flushing state on graceful shutdown, where
    /// "the main file on disk is current" must hold at a specific
    /// moment rather than eventually.
    pub fn persist(&mut self) {
        self.save_cache();
    }

    /// Runs a single config — a one-point [`run`](Self::run) without
    /// the `Vec` ceremony. Same cache/dedup semantics.
    pub fn run_one(&mut self, config: &SimulationConfig) -> SimulationResult {
        self.run(std::slice::from_ref(config))
            .pop()
            .expect("one config in, one result out")
    }

    /// Runs every config (answering from cache/dedup where possible)
    /// and returns results in input order.
    pub fn run(&mut self, configs: &[SimulationConfig]) -> Vec<SimulationResult> {
        self.run_inner(configs, None)
    }

    /// [`run`](Self::run) with observability: emits one
    /// [`EventKind::SweepPointStart`] per executed point and one
    /// [`EventKind::SweepPointCached`] per cache/dedup hit (the event's
    /// `trial` field carries the point index), and mirrors the
    /// [`SweepStats`] deltas into `metrics` counters (`sweep_points`,
    /// `sweep_cache_hits`, `sweep_dedup_hits`, `sweep_points_executed`,
    /// `sweep_trials_executed`, `pool_batches`).
    pub fn run_traced(
        &mut self,
        configs: &[SimulationConfig],
        recorder: &dyn Recorder,
        metrics: &mut MetricsRegistry,
    ) -> Vec<SimulationResult> {
        let before = self.stats;
        let results = self.run_inner(configs, Some(recorder));
        let delta = |field: fn(&SweepStats) -> u64| field(&self.stats) - field(&before);
        metrics.counter("sweep_points").add(delta(|s| s.points));
        metrics.counter("sweep_cache_hits").add(delta(|s| s.cache_hits));
        metrics.counter("sweep_dedup_hits").add(delta(|s| s.dedup_hits));
        metrics
            .counter("sweep_points_executed")
            .add(delta(|s| s.points_executed));
        metrics
            .counter("sweep_trials_executed")
            .add(delta(|s| s.trials_executed));
        metrics.counter("pool_batches").add(delta(|s| s.pool_batches));
        results
    }

    fn run_inner(
        &mut self,
        configs: &[SimulationConfig],
        recorder: Option<&dyn Recorder>,
    ) -> Vec<SimulationResult> {
        self.stats.points += configs.len() as u64;
        telemetry::add_expected_points(configs.len() as u64);
        let fingerprints: Vec<u64> = configs.iter().map(fingerprint).collect();

        // Plan: first occurrence of an uncached fingerprint becomes a
        // job; later occurrences are dedup hits, cached ones cache hits.
        let mut emit_t = 0u64;
        let mut emit = |point: u64, kind: EventKind| {
            if let Some(r) = recorder {
                r.record(Event::new(emit_t, point, kind));
                emit_t += 1;
            }
        };
        let mut planned: Vec<u64> = Vec::new();
        let mut sims: Vec<Arc<Simulation>> = Vec::new();
        for (point, (config, &fp)) in configs.iter().zip(&fingerprints).enumerate() {
            // Request-scoped tracing: one probe span per point, with a
            // hit/miss annotation. Reads the clock only — never the
            // sim RNG streams — so plans are identical traced or not.
            let mut probe = trace::start("cache-probe", trace::CAT_EXEC);
            if self.memory.contains_key(&fp) {
                self.stats.cache_hits += 1;
                telemetry::point_cached();
                if let Some(span) = probe.as_mut() {
                    span.arg("hit", 1);
                }
                emit(point as u64, EventKind::SweepPointCached { point: point as u64, fingerprint: fp });
            } else if planned.contains(&fp) {
                self.stats.dedup_hits += 1;
                telemetry::point_cached();
                if let Some(span) = probe.as_mut() {
                    span.arg("hit", 1);
                    span.arg("dedup", 1);
                }
                emit(point as u64, EventKind::SweepPointCached { point: point as u64, fingerprint: fp });
            } else {
                planned.push(fp);
                sims.push(Arc::new(Simulation::new(config.clone())));
                self.stats.points_executed += 1;
                self.stats.trials_executed += config.trials;
                if let Some(span) = probe.as_mut() {
                    span.arg("hit", 0);
                }
                emit(point as u64, EventKind::SweepPointStart {
                    point: point as u64,
                    fingerprint: fp,
                    trials: config.trials,
                });
            }
        }

        if !sims.is_empty() {
            let jobs: Vec<RangeJob> = sims
                .iter()
                .map(|sim| RangeJob {
                    sim: sim.clone(),
                    start: 0,
                    end: sim.config().trials,
                    point: true,
                })
                .collect();
            let (partials, batches) = match &mut self.pool {
                PoolHandle::Owned(pool) => pool.run(jobs),
                PoolHandle::Global => global_pool()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .run(jobs),
            };
            self.stats.pool_batches += batches;
            let mut fresh: Vec<(u64, SimulationResult)> = Vec::with_capacity(planned.len());
            for ((fp, sim), partial) in planned.iter().zip(&sims).zip(partials) {
                let result = sim.finish(partial);
                self.memory.insert(*fp, result.clone());
                fresh.push((*fp, result));
            }
            // Durability ordering: journal-append (fsync) first, so a
            // crash at any later instant loses nothing; fold into the
            // main file only when the journal has grown enough to be
            // worth a full rewrite (owners with a lifecycle call
            // `persist` at drain).
            self.journal_append(&fresh);
            if self.journal_entries >= JOURNAL_COMPACT_THRESHOLD {
                self.save_cache();
            }
        }

        fingerprints
            .iter()
            .map(|fp| self.memory[fp].clone())
            .collect()
    }

    /// Appends freshly executed points to the journal and makes them
    /// durable (flush + fsync) before returning. No-op without an
    /// attached cache.
    fn journal_append(&mut self, fresh: &[(u64, SimulationResult)]) {
        let Some(path) = &self.cache_path else {
            return;
        };
        if fresh.is_empty() {
            return;
        }
        let journal = journal_path(path);
        let mut buf = String::new();
        for (fp, result) in fresh {
            let fingerprint = format!("{fp:016x}");
            let entry = CacheEntry {
                checksum: entry_checksum(&fingerprint, result),
                fingerprint,
                result: result.clone(),
            };
            buf.push_str(&serde_json::to_string(&entry).expect("entry serializes"));
            buf.push('\n');
        }
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal)
            .and_then(|mut file| {
                file.write_all(buf.as_bytes())?;
                file.sync_data()
            });
        match appended {
            Ok(()) => self.journal_entries += fresh.len(),
            // A read-only cache location should not kill a run whose
            // results are already in memory.
            Err(e) => eprintln!(
                "warning: failed to append sweep-cache journal {}: {e}",
                journal.display()
            ),
        }
    }

    /// Rewrites the attached cache file (no-op without one): write to
    /// `<path>.tmp`, fsync, atomically rename over the old file, then
    /// drop the journal the rewrite absorbed. A crash at any byte of
    /// this sequence leaves either the old state (plus the journal) or
    /// the new state — never a torn file. Entries are sorted by
    /// fingerprint so the file is deterministic for a given content
    /// set.
    fn save_cache(&mut self) {
        let Some(path) = self.cache_path.clone() else {
            return;
        };
        let mut entries: Vec<CacheEntry> = self
            .memory
            .iter()
            .map(|(fp, result)| {
                let fingerprint = format!("{fp:016x}");
                CacheEntry {
                    checksum: entry_checksum(&fingerprint, result),
                    fingerprint,
                    result: result.clone(),
                }
            })
            .collect();
        entries.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        let file = CacheFile { version: CACHE_VERSION, entries };
        let text = serde_json::to_string_pretty(&file).expect("cache serializes");
        match write_atomic(&path, text.as_bytes()) {
            Ok(()) => {
                let _ = std::fs::remove_file(journal_path(&path));
                self.journal_entries = 0;
                self.last_persist = Some(Instant::now());
            }
            Err(e) => eprintln!(
                "warning: failed to write sweep cache {}: {e}",
                path.display()
            ),
        }
    }
}

/// Crash-safe whole-file replacement: temp file + fsync + rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new()
    }
}

/// The process-global executor behind [`run_sweep`]: shares the global
/// worker pool and accumulates cache/dedup state for the process
/// lifetime, so every figure family and CLI command benefits from every
/// earlier one.
fn global_executor() -> &'static Mutex<SweepExecutor> {
    static EXECUTOR: OnceLock<Mutex<SweepExecutor>> = OnceLock::new();
    EXECUTOR.get_or_init(|| {
        let mut exec = SweepExecutor::new();
        if let Ok(path) = std::env::var("SOS_SWEEP_CACHE") {
            if !path.is_empty() {
                match exec.attach_cache(&path) {
                    Ok(n) => eprintln!("sweep cache {path}: {n} entries loaded"),
                    Err(e) => eprintln!(
                        "warning: ignoring sweep cache {path}: {e} (running cold)"
                    ),
                }
            }
        }
        Mutex::new(exec)
    })
}

/// Runs a sweep on the process-global executor (global pool, global
/// cache). Results come back in input order; equal configs are
/// executed once. This is the call every experiment family routes
/// through — replace a loop of `run_parallel(num_threads())` calls with
/// one `run_sweep(&configs)`.
pub fn run_sweep(configs: &[SimulationConfig]) -> Vec<SimulationResult> {
    global_executor()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .run(configs)
}

/// [`run_sweep`] with observability (see
/// [`SweepExecutor::run_traced`]).
pub fn run_sweep_traced(
    configs: &[SimulationConfig],
    recorder: &dyn Recorder,
    metrics: &mut MetricsRegistry,
) -> Vec<SimulationResult> {
    global_executor()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .run_traced(configs, recorder, metrics)
}

/// Attaches a persistent cache file to the process-global executor
/// (the `--cache` flag); returns the number of entries loaded. See
/// [`SweepExecutor::attach_cache`] for error semantics.
pub fn set_global_cache(path: impl AsRef<Path>) -> io::Result<usize> {
    global_executor()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .attach_cache(path)
}

/// Counters of the process-global executor so far.
pub fn sweep_stats() -> SweepStats {
    global_executor()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TransportKind;
    use crate::routing::RoutingPolicy;
    use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
    use sos_faults::{FaultConfig, RetryPolicy};

    fn config(budget: u64, seed: u64) -> SimulationConfig {
        let scenario = Scenario::builder()
            .system(SystemParams::new(500, 40, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        SimulationConfig::new(
            scenario,
            AttackConfig::OneBurst {
                budget: AttackBudget::new(10, budget),
            },
        )
        .trials(8)
        .routes_per_trial(15)
        .seed(seed)
    }

    #[test]
    fn executor_matches_per_point_run_parallel() {
        let configs = vec![config(0, 1), config(100, 1), config(200, 2)];
        let mut exec = SweepExecutor::with_threads(2);
        let swept = exec.run(&configs);
        for (cfg, swept) in configs.iter().zip(&swept) {
            let reference = Simulation::new(cfg.clone()).run_parallel(2);
            assert_eq!(swept.successes, reference.successes);
            assert_eq!(swept.attempts, reference.attempts);
            assert_eq!(swept.failure_depths, reference.failure_depths);
        }
    }

    #[test]
    fn duplicate_points_dedup_within_a_run() {
        let configs = vec![config(100, 7), config(100, 7), config(100, 7)];
        let mut exec = SweepExecutor::with_threads(1);
        let results = exec.run(&configs);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        let stats = exec.stats();
        assert_eq!(stats.points, 3);
        assert_eq!(stats.points_executed, 1);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(stats.trials_executed, 8);
        assert!(stats.pool_batches >= 1);
    }

    #[test]
    fn repeat_runs_hit_the_in_memory_cache() {
        let configs = vec![config(100, 3)];
        let mut exec = SweepExecutor::with_threads(1);
        let cold = exec.run(&configs);
        let warm = exec.run(&configs);
        assert_eq!(cold, warm);
        let stats = exec.stats();
        assert_eq!(stats.points_executed, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn fingerprint_separates_every_knob() {
        let base = config(100, 3);
        let variants = [
            base.clone().seed(4),
            base.clone().trials(9),
            base.clone().routes_per_trial(16),
            base.clone().policy(RoutingPolicy::FirstGood),
            base.clone().transport(TransportKind::Chord),
            base.clone().faults(FaultConfig::none().loss(0.1)),
        ];
        let fp = fingerprint(&base);
        for variant in &variants {
            assert_ne!(fingerprint(variant), fp, "{variant:?}");
        }
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
    }

    #[test]
    fn structural_fingerprint_splits_build_from_attack_knobs() {
        let base = config(100, 3);
        // Attack/fault-side knobs leave the structural part unchanged —
        // these are exactly the transitions the engine's build memo can
        // answer without rebuilding.
        let attack_only = [
            base.clone().seed(4),
            base.clone().trials(9),
            base.clone().routes_per_trial(16),
            base.clone().policy(RoutingPolicy::FirstGood),
            base.clone().faults(FaultConfig::none().loss(0.1)),
            config(300, 9),
        ];
        let sfp = structural_fingerprint(&base);
        for variant in &attack_only {
            assert_eq!(structural_fingerprint(variant), sfp, "{variant:?}");
            // The *full* fingerprint still separates them (they are
            // different experiments, just build-compatible ones).
            assert_ne!(fingerprint(variant), fingerprint(&base), "{variant:?}");
        }
        // Structure-side knobs move it.
        let chord = base.clone().transport(TransportKind::Chord);
        assert_ne!(structural_fingerprint(&chord), sfp);
        let scenario = Scenario::builder()
            .system(SystemParams::new(600, 40, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        let resized = SimulationConfig::new(
            scenario,
            *base.attack(),
        )
        .trials(8)
        .routes_per_trial(15)
        .seed(3);
        assert_ne!(structural_fingerprint(&resized), sfp);
    }

    #[test]
    fn inert_fault_knobs_are_canonicalized() {
        // Without faults, the retry policy and the fault seed are
        // unobservable — configs differing only there must share one
        // cache entry.
        let base = config(100, 3);
        let retry = base.clone().retry(RetryPolicy::new(4, 1, 64));
        let seeded = base
            .clone()
            .faults(FaultConfig { seed: 99, ..FaultConfig::none() });
        assert_eq!(fingerprint(&base), fingerprint(&retry));
        assert_eq!(fingerprint(&base), fingerprint(&seeded));
        // With faults on, retry *does* matter.
        let faulty = base.clone().faults(FaultConfig::none().loss(0.2));
        let faulty_retry = faulty.clone().retry(RetryPolicy::new(4, 1, 64));
        assert_ne!(fingerprint(&faulty), fingerprint(&faulty_retry));
    }

    #[test]
    fn cache_file_round_trips_bit_for_bit() {
        let dir = std::env::temp_dir().join("sos-sweep-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let configs = vec![config(100, 5), config(300, 5)];
        let mut cold = SweepExecutor::with_threads(1);
        assert_eq!(cold.attach_cache(&path).unwrap(), 0);
        let cold_results = cold.run(&configs);
        drop(cold);

        let mut warm = SweepExecutor::with_threads(1);
        let loaded = warm.attach_cache(&path).unwrap();
        assert_eq!(loaded, 2);
        let warm_results = warm.run(&configs);
        assert_eq!(warm.stats().points_executed, 0);
        assert_eq!(warm.stats().cache_hits, 2);
        // Byte-equal through JSON: the cache must reproduce CSVs
        // bit-for-bit, not just approximately.
        assert_eq!(
            serde_json::to_string(&cold_results).unwrap(),
            serde_json::to_string(&warm_results).unwrap(),
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(journal_path(&path));
    }

    #[test]
    fn malformed_cache_is_quarantined_not_fatal() {
        let dir = std::env::temp_dir().join("sos-sweep-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bad-{}.json", std::process::id()));
        let corrupt = dir.join(format!("bad-{}.json.corrupt", std::process::id()));
        let _ = std::fs::remove_file(&corrupt);
        std::fs::write(&path, "{not json").unwrap();
        let mut exec = SweepExecutor::with_threads(1);
        let report = exec.attach_cache_report(&path).unwrap();
        assert_eq!(report.loaded, 0);
        assert_eq!(report.quarantined.as_deref(), Some(corrupt.as_path()));
        assert!(!path.exists(), "damaged original must be renamed away");
        assert_eq!(
            std::fs::read_to_string(&corrupt).unwrap(),
            "{not json",
            "quarantine must preserve the damaged bytes for diffing"
        );
        // The executor still works: it runs cold and persists fresh.
        let result = exec.run_one(&config(100, 11));
        exec.persist();
        let mut warm = SweepExecutor::with_threads(1);
        assert_eq!(warm.attach_cache(&path).unwrap(), 1);
        assert_eq!(warm.run_one(&config(100, 11)), result);
        assert_eq!(warm.stats().cache_hits, 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
    }

    #[test]
    fn journal_makes_points_durable_without_a_full_rewrite() {
        let dir = std::env::temp_dir().join("sos-sweep-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("journal-{}.json", std::process::id()));
        let journal = dir.join(format!("journal-{}.json.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);

        let configs = vec![config(100, 21), config(200, 21)];
        let mut crashed = SweepExecutor::with_threads(1);
        crashed.attach_cache(&path).unwrap();
        let cold = crashed.run(&configs);
        // Simulated crash: drop without persist. The journal alone must
        // carry every completed point.
        assert!(!path.exists(), "main file is only written at persist/compact");
        assert!(journal.exists(), "journal must exist immediately");
        drop(crashed);

        let mut recovered = SweepExecutor::with_threads(1);
        let report = recovered.attach_cache_report(&path).unwrap();
        assert_eq!(report.journal_recovered, 2);
        assert_eq!(report.skipped, 0);
        let warm = recovered.run(&configs);
        assert_eq!(recovered.stats().points_executed, 0);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
        );

        // A graceful persist folds the journal into the main file,
        // atomically, and removes it.
        recovered.persist();
        assert!(path.exists());
        assert!(!journal.exists(), "persist must absorb the journal");
        assert!(recovered.last_persist_age().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_journal_tail_is_dropped_and_prefix_recovered() {
        let dir = std::env::temp_dir().join("sos-sweep-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}.json", std::process::id()));
        let journal = dir.join(format!("torn-{}.json.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);

        let configs = vec![config(100, 31), config(200, 31), config(300, 31)];
        let mut exec = SweepExecutor::with_threads(1);
        exec.attach_cache(&path).unwrap();
        let cold = exec.run(&configs);
        drop(exec);

        // Tear the final journal line mid-byte, as a crash mid-append
        // would.
        let text = std::fs::read_to_string(&journal).unwrap();
        std::fs::write(&journal, &text[..text.len() - 40]).unwrap();

        let mut recovered = SweepExecutor::with_threads(1);
        let report = recovered.attach_cache_report(&path).unwrap();
        assert_eq!(report.journal_recovered, 2, "intact prefix recovered");
        assert_eq!(report.skipped, 1, "torn tail dropped");
        // Re-running recomputes only the torn point, and every answer
        // matches the pre-crash bytes.
        let warm = recovered.run(&configs);
        assert_eq!(recovered.stats().points_executed, 1);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn checksum_mismatch_skips_the_entry_and_quarantines_a_copy() {
        let dir = std::env::temp_dir().join("sos-sweep-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flip-{}.json", std::process::id()));
        let corrupt = dir.join(format!("flip-{}.json.corrupt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);

        let mut exec = SweepExecutor::with_threads(1);
        exec.attach_cache(&path).unwrap();
        exec.run(&[config(100, 41), config(200, 41)]);
        exec.persist();
        drop(exec);

        // Flip a digit inside a stored numeric field — the file still
        // parses, but the entry's checksum no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        let successes = text.find("\"successes\"").unwrap();
        let mut bytes = text.into_bytes();
        let digit = bytes[successes..]
            .iter()
            .position(|b| b.is_ascii_digit())
            .unwrap()
            + successes;
        bytes[digit] = if bytes[digit] == b'9' { b'8' } else { bytes[digit] + 1 };
        std::fs::write(&path, &bytes).unwrap();

        let mut recovered = SweepExecutor::with_threads(1);
        let report = recovered.attach_cache_report(&path).unwrap();
        assert_eq!(report.loaded, 1, "intact entry kept");
        assert_eq!(report.skipped, 1, "flipped entry skipped");
        assert_eq!(report.quarantined.as_deref(), Some(corrupt.as_path()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
    }

    #[test]
    fn traced_run_emits_events_and_counters() {
        use sos_observe::MemoryRecorder;
        let configs = vec![config(100, 9), config(100, 9), config(200, 9)];
        let mut exec = SweepExecutor::with_threads(1);
        let recorder = MemoryRecorder::new();
        let mut metrics = MetricsRegistry::new();
        exec.run_traced(&configs, &recorder, &mut metrics);
        let events = recorder.take_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SweepPointStart { .. }))
            .count();
        let cached = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SweepPointCached { .. }))
            .count();
        assert_eq!(starts, 2);
        assert_eq!(cached, 1);
        assert_eq!(metrics.counter_value("sweep_points"), Some(3));
        assert_eq!(metrics.counter_value("sweep_points_executed"), Some(2));
        assert_eq!(metrics.counter_value("sweep_dedup_hits"), Some(1));
        assert_eq!(metrics.counter_value("sweep_trials_executed"), Some(16));
    }
}
