//! Dynamic repair — the paper's named future work, implemented as an
//! extension experiment.
//!
//! §5 of the paper: *"we do not consider system repairs here … We are
//! planning to study the system behavior under such sophisticated
//! attacks and system dynamics using extensive simulations."* This
//! module is that simulation. After the configured attack lands, the
//! system repairs up to `repair_capacity` compromised infrastructure
//! nodes per time step, while the attacker either:
//!
//! * [`AttackerPersistence::Stale`] — cannot follow repairs (a repaired
//!   node gets a fresh identity, invalidating the attacker's
//!   knowledge); `P_S(t)` recovers toward 1, or
//! * [`AttackerPersistence::Adaptive`] — immediately re-congests any
//!   repaired node it knows about (knowledge stays valid); only
//!   randomly-congested repairs stick, so `P_S(t)` plateaus.

use crate::routing::{route_message_into, RouteScratch, RoutingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sos_attack::{OneBurstAttacker, SuccessiveAttacker};
use sos_core::{AttackConfig, Scenario};
use sos_faults::{FaultConfig, FaultPlan, RetryPolicy};
use sos_math::sampling::{sample_from, shuffle};
use sos_math::stats::RunningStats;
use sos_overlay::{NodeId, NodeStatus, Overlay, Transport};
use std::collections::HashSet;

/// Whether the attacker can keep targeting repaired nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackerPersistence {
    /// Repairs invalidate the attacker's knowledge of the node.
    #[default]
    Stale,
    /// The attacker re-congests repaired nodes it knows about, as long
    /// as congestion budget is free.
    Adaptive,
}

impl AttackerPersistence {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            AttackerPersistence::Stale => "stale",
            AttackerPersistence::Adaptive => "adaptive",
        }
    }
}

/// Repair-dynamics parameters.
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Infrastructure nodes repaired per time step.
    pub repair_capacity: u64,
    /// Time steps simulated after the attack.
    pub steps: u32,
    /// Attacker behaviour toward repaired nodes.
    pub persistence: AttackerPersistence,
    /// Optional overlay churn applied each step before repairs.
    /// Promotion-based churn heals the architecture for free (a fresh
    /// node replaces a compromised one and the attacker's knowledge of
    /// the departed identity goes stale).
    pub churn: Option<sos_overlay::ChurnModel>,
}

impl RepairConfig {
    /// Creates a config without churn.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn new(repair_capacity: u64, steps: u32, persistence: AttackerPersistence) -> Self {
        assert!(steps > 0, "simulate at least one step");
        RepairConfig {
            repair_capacity,
            steps,
            persistence,
            churn: None,
        }
    }

    /// Adds overlay churn to the dynamics.
    pub fn with_churn(mut self, churn: sos_overlay::ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }
}

/// `P_S` measured at one time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairStepStats {
    /// 0-based step (0 = immediately after the attack, before repairs).
    pub step: u32,
    /// Mean empirical `P_S` over trials at this step.
    pub ps: f64,
    /// Mean count of bad infrastructure nodes (SOS + filters).
    pub bad_infrastructure: f64,
}

/// The measured `P_S(t)` trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairTimeline {
    /// One entry per step, in time order.
    pub steps: Vec<RepairStepStats>,
}

impl RepairTimeline {
    /// The `P_S` series (for trend assertions and plotting).
    pub fn ps_series(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.ps).collect()
    }

    /// `P_S` at the final step.
    pub fn final_ps(&self) -> f64 {
        self.steps.last().map(|s| s.ps).unwrap_or(0.0)
    }
}

/// Runs repair dynamics over several attacked-overlay trials.
#[derive(Debug, Clone)]
pub struct RepairSimulation {
    scenario: Scenario,
    attack: AttackConfig,
    repair: RepairConfig,
    trials: u64,
    routes_per_step: u64,
    seed: u64,
    faults: FaultConfig,
    retry: RetryPolicy,
}

impl RepairSimulation {
    /// Creates the simulation with the given trial plan.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `routes_per_step == 0`.
    pub fn new(
        scenario: Scenario,
        attack: AttackConfig,
        repair: RepairConfig,
        trials: u64,
        routes_per_step: u64,
        seed: u64,
    ) -> Self {
        assert!(trials > 0, "at least one trial");
        assert!(routes_per_step > 0, "at least one route per step");
        RepairSimulation {
            scenario,
            attack,
            repair,
            trials,
            routes_per_step,
            seed,
            faults: FaultConfig::none(),
            retry: RetryPolicy::none(),
        }
    }

    /// Enables deterministic benign-fault injection on the measurement
    /// routes. [`FaultConfig::none`] (the default) keeps the timeline
    /// bit-identical to a fault-free build.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-hop retry/backoff policy applied when faults are
    /// enabled.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Runs all trials and averages `P_S(t)` per step.
    pub fn run(&self) -> RepairTimeline {
        let steps = self.repair.steps as usize;
        let mut ps_acc: Vec<RunningStats> = vec![RunningStats::new(); steps + 1];
        let mut bad_acc: Vec<RunningStats> = vec![RunningStats::new(); steps + 1];
        let mut scratch = RouteScratch::new();

        for trial in 0..self.trials {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ trial.wrapping_mul(0xD134_2543_DE82_EF95),
            );
            let plan = (!self.faults.is_none()).then(|| FaultPlan::new(&self.faults, trial));
            let mut overlay = Overlay::build(&self.scenario, &mut rng);
            let disclosed: HashSet<NodeId> = match self.attack {
                AttackConfig::OneBurst { budget } => {
                    let outcome =
                        OneBurstAttacker::new(budget).execute(&mut overlay, &mut rng);
                    outcome.disclosed.into_iter().collect()
                }
                AttackConfig::Successive { budget, params } => {
                    let outcome = SuccessiveAttacker::new(budget, params)
                        .execute(&mut overlay, &mut rng);
                    outcome.disclosed.into_iter().collect()
                }
            };
            let mut known: HashSet<NodeId> = disclosed;

            for step in 0..=steps {
                // Measure.
                let mut delivered = 0u64;
                for _ in 0..self.routes_per_step {
                    if route_message_into(
                        &overlay,
                        &Transport::Direct,
                        RoutingPolicy::RandomGood,
                        plan.as_ref(),
                        &self.retry,
                        &mut rng,
                        &mut scratch,
                    )
                    .delivered
                    {
                        delivered += 1;
                    }
                }
                ps_acc[step].push(delivered as f64 / self.routes_per_step as f64);
                bad_acc[step].push(bad_infrastructure(&overlay) as f64);
                if step == steps {
                    break;
                }

                // Churn first (the environment moves regardless of the
                // operator): departures, promotions, stale knowledge.
                if let Some(churn) = &self.repair.churn {
                    for event in churn.step(&mut overlay, &mut rng) {
                        if let sos_overlay::ChurnEvent::SosReplaced { departed, .. }
                        | sos_overlay::ChurnEvent::SosLost { departed, .. } = event
                        {
                            known.remove(&departed);
                        }
                    }
                }

                // Repair: fix up to `repair_capacity` bad infrastructure
                // nodes, chosen uniformly.
                let mut bad: Vec<NodeId> = infrastructure_ids(&overlay)
                    .into_iter()
                    .filter(|&id| !overlay.is_good(id))
                    .collect();
                shuffle(&mut rng, &mut bad);
                let fix = (self.repair.repair_capacity as usize).min(bad.len());
                let repaired = sample_from(&mut rng, &bad, fix);
                for node in &repaired {
                    overlay.set_status(*node, NodeStatus::Good);
                }
                match self.repair.persistence {
                    AttackerPersistence::Stale => {
                        // New identities: the attacker loses track.
                        for node in &repaired {
                            known.remove(node);
                        }
                    }
                    AttackerPersistence::Adaptive => {
                        // Freed congestion slots chase the known nodes.
                        for node in &repaired {
                            if known.contains(node) {
                                overlay.set_status(*node, NodeStatus::Congested);
                            }
                        }
                    }
                }
            }
        }

        RepairTimeline {
            steps: (0..=steps)
                .map(|s| RepairStepStats {
                    step: s as u32,
                    ps: ps_acc[s].mean(),
                    bad_infrastructure: bad_acc[s].mean(),
                })
                .collect(),
        }
    }
}

fn infrastructure_ids(overlay: &Overlay) -> Vec<NodeId> {
    let mut ids = Vec::new();
    for layer in 1..=overlay.layer_count() + 1 {
        ids.extend_from_slice(overlay.layer_members(layer));
    }
    ids
}

fn bad_infrastructure(overlay: &Overlay) -> usize {
    infrastructure_ids(overlay)
        .into_iter()
        .filter(|&id| !overlay.is_good(id))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{AttackBudget, MappingDegree, SystemParams};
    use sos_math::series::{trend, Trend};

    fn scenario() -> Scenario {
        Scenario::builder()
            .system(SystemParams::new(800, 60, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap()
    }

    fn attack() -> AttackConfig {
        AttackConfig::OneBurst {
            budget: AttackBudget::new(160, 240),
        }
    }

    #[test]
    fn stale_attacker_allows_full_recovery() {
        let sim = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(10, 12, AttackerPersistence::Stale),
            25,
            60,
            1,
        );
        let timeline = sim.run();
        assert_eq!(timeline.steps.len(), 13);
        // P_S recovers (weakly) over time and ends near 1.
        let series = timeline.ps_series();
        assert!(series[0] < 1.0, "attack should do damage: {series:?}");
        assert!(
            timeline.final_ps() > 0.95,
            "repair should restore service: {series:?}"
        );
        assert_ne!(trend(&series, 0.02), Trend::NonIncreasing);
        // Bad node count shrinks to ~0.
        assert!(timeline.steps.last().unwrap().bad_infrastructure < 1.0);
    }

    #[test]
    fn adaptive_attacker_limits_recovery() {
        let stale = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(10, 12, AttackerPersistence::Stale),
            25,
            60,
            2,
        )
        .run();
        let adaptive = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(10, 12, AttackerPersistence::Adaptive),
            25,
            60,
            2,
        )
        .run();
        assert!(
            adaptive.final_ps() < stale.final_ps(),
            "adaptive {} should recover less than stale {}",
            adaptive.final_ps(),
            stale.final_ps()
        );
    }

    #[test]
    fn zero_capacity_means_no_recovery() {
        let timeline = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(0, 6, AttackerPersistence::Stale),
            15,
            60,
            3,
        )
        .run();
        let first = timeline.steps.first().unwrap().bad_infrastructure;
        let last = timeline.steps.last().unwrap().bad_infrastructure;
        assert!((first - last).abs() < 1e-9, "{first} vs {last}");
    }

    #[test]
    fn labels_stable() {
        assert_eq!(AttackerPersistence::Stale.label(), "stale");
        assert_eq!(AttackerPersistence::Adaptive.label(), "adaptive");
    }

    #[test]
    fn promotion_churn_defeats_the_adaptive_attacker() {
        // Against an adaptive attacker, zero repair capacity alone keeps
        // P_S flat; promotion churn rotates identities out from under
        // the attacker's knowledge and restores service.
        let no_churn = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(0, 10, AttackerPersistence::Adaptive),
            20,
            60,
            9,
        )
        .run();
        let with_churn = RepairSimulation::new(
            scenario(),
            attack(),
            RepairConfig::new(10, 10, AttackerPersistence::Adaptive)
                .with_churn(sos_overlay::ChurnModel::new(0.05, true)),
            20,
            60,
            9,
        )
        .run();
        assert!(
            with_churn.final_ps() > no_churn.final_ps() + 0.05,
            "churn {} should beat static {}",
            with_churn.final_ps(),
            no_churn.final_ps()
        );
    }
}
