//! Capacity-based congestion: what the binary "congested = dead"
//! assumption hides.
//!
//! The paper models a congested node as simply non-functional. In a
//! real deployment congestion is a *load* phenomenon: an attacked node
//! with capacity `C` msg/tick under attack load `a` still serves a
//! legitimate message with probability `C / (C + a)` (processor
//! sharing). This module re-runs the attack with the congestion budget
//! interpreted as load — each congestion slot carries
//! [`FlowModel::load_per_slot`] units, split evenly over the attacker's
//! chosen targets — and measures the resulting end-to-end delivery
//! probability.
//!
//! As `load_per_slot / node_capacity → ∞` the flow model converges to
//! the paper's binary model (verified by tests); at finite ratios the
//! architecture degrades gracefully, which shifts the design trade-offs
//! measurably (the `ext-flow` experiment).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_attack::{OneBurstAttacker, SuccessiveAttacker};
use sos_core::{AttackConfig, Scenario};
use sos_math::sampling::shuffle;
use sos_math::stats::{proportion_ci, ConfidenceInterval};
use sos_overlay::{NodeId, NodeStatus, Overlay};
use std::collections::HashMap;

/// Load-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowModel {
    /// Useful work a node can do per tick (legitimate service capacity).
    pub node_capacity: f64,
    /// Attack load carried by one congestion slot.
    pub load_per_slot: f64,
}

impl FlowModel {
    /// Creates a flow model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(node_capacity: f64, load_per_slot: f64) -> Self {
        assert!(
            node_capacity > 0.0 && node_capacity.is_finite(),
            "capacity must be positive and finite"
        );
        assert!(
            load_per_slot > 0.0 && load_per_slot.is_finite(),
            "load per slot must be positive and finite"
        );
        FlowModel {
            node_capacity,
            load_per_slot,
        }
    }

    /// Probability a node under `load` serves a legitimate message.
    pub fn service_probability(&self, load: f64) -> f64 {
        self.node_capacity / (self.node_capacity + load.max(0.0))
    }
}

/// Result of a flow-model Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Delivered messages.
    pub successes: u64,
    /// Total messages routed.
    pub attempts: u64,
    /// Mean attack load per loaded node (diagnostic).
    pub mean_load_per_target: f64,
}

impl FlowResult {
    /// Empirical delivery probability.
    pub fn delivery_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Wilson interval on the delivery rate.
    ///
    /// # Panics
    ///
    /// Panics with zero attempts.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        proportion_ci(self.successes, self.attempts, level)
    }
}

/// Monte Carlo runner for the flow model.
#[derive(Debug, Clone)]
pub struct FlowSimulation {
    scenario: Scenario,
    attack: AttackConfig,
    flow: FlowModel,
    trials: u64,
    routes_per_trial: u64,
    seed: u64,
}

impl FlowSimulation {
    /// Creates the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `routes_per_trial == 0`.
    pub fn new(
        scenario: Scenario,
        attack: AttackConfig,
        flow: FlowModel,
        trials: u64,
        routes_per_trial: u64,
        seed: u64,
    ) -> Self {
        assert!(trials > 0, "at least one trial");
        assert!(routes_per_trial > 0, "at least one route per trial");
        FlowSimulation {
            scenario,
            attack,
            flow,
            trials,
            routes_per_trial,
            seed,
        }
    }

    /// Runs all trials.
    pub fn run(&self) -> FlowResult {
        let mut successes = 0u64;
        let mut attempts = 0u64;
        let mut load_sum = 0.0f64;
        let mut load_count = 0u64;
        for trial in 0..self.trials {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ trial.wrapping_mul(0xA076_1D64_78BD_642F),
            );
            let mut overlay = Overlay::build(&self.scenario, &mut rng);
            // Execute the attack with binary semantics to obtain the
            // attacker's target choice, then reinterpret congestion as
            // load.
            let outcome = match self.attack {
                AttackConfig::OneBurst { budget } => {
                    OneBurstAttacker::new(budget).execute(&mut overlay, &mut rng)
                }
                AttackConfig::Successive { budget, params } => {
                    SuccessiveAttacker::new(budget, params).execute(&mut overlay, &mut rng)
                }
            };
            let budget = self.attack.budget();
            let total_load = budget.congestion_capacity as f64 * self.flow.load_per_slot;
            let mut load: HashMap<NodeId, f64> = HashMap::new();
            if !outcome.congested.is_empty() {
                let per_target = total_load / outcome.congested.len() as f64;
                for &t in &outcome.congested {
                    load.insert(t, per_target);
                    load_sum += per_target;
                    load_count += 1;
                }
            }
            // Un-congest: in the flow model those nodes are loaded, not
            // dead (broken nodes stay dead).
            for &t in &outcome.congested {
                overlay.set_status(t, NodeStatus::Good);
            }

            for _ in 0..self.routes_per_trial {
                attempts += 1;
                if self.route_with_load(&overlay, &load, &mut rng) {
                    successes += 1;
                }
            }
        }
        FlowResult {
            successes,
            attempts,
            mean_load_per_target: if load_count == 0 {
                0.0
            } else {
                load_sum / load_count as f64
            },
        }
    }

    /// One routing attempt. At every layer the sender tries its
    /// neighbors in random order, retransmitting to the next neighbor
    /// when a message is dropped — the flow-model analogue of the binary
    /// model's "fail only if *all* `m_i` neighbors are bad" semantics
    /// (and what makes the crushing-load limit converge to it). Broken
    /// nodes are hard-dead; loaded nodes drop probabilistically.
    fn route_with_load(
        &self,
        overlay: &Overlay,
        load: &HashMap<NodeId, f64>,
        rng: &mut StdRng,
    ) -> bool {
        let last_layer = overlay.layer_count() + 1;
        let mut candidates = overlay.sample_entry_points(rng);
        loop {
            shuffle(rng, &mut candidates);
            let mut forwarded: Option<NodeId> = None;
            for &node in &candidates {
                if overlay.status(node) == NodeStatus::Broken {
                    continue;
                }
                let service = self
                    .flow
                    .service_probability(load.get(&node).copied().unwrap_or(0.0));
                if rng.gen::<f64>() < service {
                    forwarded = Some(node);
                    break;
                }
            }
            let Some(node) = forwarded else {
                return false; // every neighbor dead or dropping
            };
            let layer = overlay
                .layer_of(node)
                .expect("routed nodes are infrastructure");
            if layer == last_layer {
                return true;
            }
            candidates = overlay.neighbors(node).to_vec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{AttackBudget, MappingDegree, SystemParams};

    fn scenario(mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::new(1_000, 60, 0.5).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    fn sim(load_per_slot: f64, n_c: u64) -> FlowSimulation {
        FlowSimulation::new(
            scenario(MappingDegree::OneTo(2)),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(50, n_c),
            },
            FlowModel::new(100.0, load_per_slot),
            50,
            60,
            13,
        )
    }

    #[test]
    fn service_probability_shape() {
        let m = FlowModel::new(100.0, 1.0);
        assert_eq!(m.service_probability(0.0), 1.0);
        assert!((m.service_probability(100.0) - 0.5).abs() < 1e-12);
        assert!(m.service_probability(1e9) < 1e-6);
        assert_eq!(m.service_probability(-5.0), 1.0, "negative load clamps");
    }

    #[test]
    fn no_attack_load_delivers_everything_not_broken() {
        // Zero congestion budget: only break-ins hurt.
        let result = sim(10.0, 0).run();
        assert!(result.delivery_rate() > 0.5);
        assert_eq!(result.mean_load_per_target, 0.0);
    }

    #[test]
    fn heavier_per_slot_load_hurts_more() {
        let light = sim(10.0, 300).run();
        let heavy = sim(10_000.0, 300).run();
        assert!(
            heavy.delivery_rate() < light.delivery_rate(),
            "heavy {} vs light {}",
            heavy.delivery_rate(),
            light.delivery_rate()
        );
    }

    #[test]
    fn infinite_load_limit_approaches_binary_model() {
        // With crushing per-slot load the flow model must match the
        // binary simulation on the same scenario/attack/seed closely.
        let flow = FlowSimulation::new(
            scenario(MappingDegree::OneTo(2)),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(50, 300),
            },
            FlowModel::new(100.0, 1e12),
            80,
            60,
            17,
        )
        .run();
        let binary = crate::engine::Simulation::new(
            crate::engine::SimulationConfig::new(
                scenario(MappingDegree::OneTo(2)),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(50, 300),
                },
            )
            .trials(80)
            .routes_per_trial(60)
            .seed(17),
        )
        .run();
        assert!(
            (flow.delivery_rate() - binary.success_rate()).abs() < 0.06,
            "flow {} vs binary {}",
            flow.delivery_rate(),
            binary.success_rate()
        );
    }

    #[test]
    fn graceful_degradation_beats_binary_at_moderate_load() {
        // The binary model is pessimistic when attack load is spread
        // thin: loaded nodes still serve most traffic.
        let flow = sim(10.0, 300).run(); // 3000 load over ~targets, C=100
        let binary = crate::engine::Simulation::new(
            crate::engine::SimulationConfig::new(
                scenario(MappingDegree::OneTo(2)),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(50, 300),
                },
            )
            .trials(50)
            .routes_per_trial(60)
            .seed(13),
        )
        .run();
        assert!(
            flow.delivery_rate() > binary.success_rate(),
            "flow {} should exceed binary {}",
            flow.delivery_rate(),
            binary.success_rate()
        );
    }

    #[test]
    fn confidence_interval_brackets_rate() {
        let result = sim(100.0, 200).run();
        let ci = result.confidence_interval(0.95);
        assert!(ci.contains(result.delivery_rate()));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_rejected() {
        FlowModel::new(0.0, 1.0);
    }
}
