//! Empirical delivery-latency measurement.
//!
//! The analytical latency model (`sos_analysis::latency`) predicts
//! expected delivery time from hop counts; this module measures it on a
//! concrete (possibly attacked) overlay by drawing exponential per-hop
//! delays during routing and collecting the full distribution, so the
//! closed form can be validated and tail percentiles (which the closed
//! form does not give) can be reported.

use crate::routing::{route_message_into, RouteScratch, RoutingPolicy};
use rand::Rng;
use sos_faults::RetryPolicy;
use sos_math::stats::{quantile, RunningStats};
use sos_overlay::{Overlay, Transport};

/// Distribution of delivery latencies over many routed messages.
#[derive(Debug, Clone)]
pub struct LatencyDistribution {
    sorted_delays: Vec<f64>,
    stats: RunningStats,
    failures: u64,
    hop_stats: RunningStats,
}

impl LatencyDistribution {
    /// Number of delivered messages in the sample.
    pub fn delivered(&self) -> u64 {
        self.stats.count()
    }

    /// Number of failed routes (no latency recorded).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Mean delivery latency.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Mean underlay hops of delivered messages.
    pub fn mean_hops(&self) -> f64 {
        self.hop_stats.mean()
    }

    /// Latency quantile (`q ∈ [0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if no messages were delivered or `q` is out of range.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.sorted_delays, q)
    }

    /// Convenience: the median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Routes `routes` fresh client messages through `overlay` and samples
/// delivery latency, with i.i.d. exponential per-underlay-hop delays of
/// mean `per_hop_mean`.
///
/// # Panics
///
/// Panics if `per_hop_mean` is not positive or `routes == 0`.
pub fn measure_latency<R: Rng + ?Sized>(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    per_hop_mean: f64,
    routes: u64,
    rng: &mut R,
) -> LatencyDistribution {
    assert!(per_hop_mean > 0.0, "per-hop mean must be positive");
    assert!(routes > 0, "at least one route required");
    let mut delays = Vec::new();
    let mut stats = RunningStats::new();
    let mut hop_stats = RunningStats::new();
    let mut failures = 0u64;
    let mut scratch = RouteScratch::new();
    let retry = RetryPolicy::none();
    for _ in 0..routes {
        let result =
            route_message_into(overlay, transport, policy, None, &retry, rng, &mut scratch);
        if !result.delivered {
            failures += 1;
            continue;
        }
        let mut delay = 0.0;
        for _ in 0..result.underlay_hops {
            // Inverse-CDF exponential draw.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            delay += -per_hop_mean * u.ln();
        }
        delays.push(delay);
        stats.push(delay);
        hop_stats.push(result.underlay_hops as f64);
    }
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LatencyDistribution {
        sorted_delays: delays,
        stats,
        failures,
        hop_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};
    use sos_overlay::{ChordRing, NodeId, NodeStatus};

    fn overlay(seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(800, 60, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    #[test]
    fn clean_overlay_latency_matches_hop_count() {
        // Direct transport, 4 hops of mean 10 ⇒ mean latency ≈ 40.
        let o = overlay(1);
        let mut rng = StdRng::seed_from_u64(2);
        let d = measure_latency(
            &o,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            10.0,
            4_000,
            &mut rng,
        );
        assert_eq!(d.failures(), 0);
        assert_eq!(d.delivered(), 4_000);
        assert_eq!(d.mean_hops(), 4.0);
        assert!((d.mean() - 40.0).abs() < 2.0, "mean {}", d.mean());
        // Quantiles ordered.
        assert!(d.p50() < d.p95());
        assert!(d.p95() < d.p99());
        assert!(d.p50() < d.mean() * 1.2);
    }

    #[test]
    fn chord_transport_is_slower() {
        let o = overlay(3);
        let mut rng = StdRng::seed_from_u64(4);
        let members: Vec<NodeId> = o.overlay_ids().collect();
        let ring = ChordRing::build(&mut rng, &members);
        let direct = measure_latency(
            &o,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            1.0,
            1_000,
            &mut rng,
        );
        let chord = measure_latency(
            &o,
            &Transport::Chord(ring),
            RoutingPolicy::RandomGood,
            1.0,
            1_000,
            &mut rng,
        );
        assert!(chord.mean() > direct.mean());
        assert!(chord.mean_hops() > direct.mean_hops());
    }

    #[test]
    fn failures_counted_separately() {
        let mut o = overlay(5);
        for &n in o.layer_members(2).to_vec().iter() {
            o.set_status(n, NodeStatus::Congested);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let d = measure_latency(
            &o,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            1.0,
            100,
            &mut rng,
        );
        assert_eq!(d.failures(), 100);
        assert_eq!(d.delivered(), 0);
    }

    #[test]
    fn analytic_oblivious_model_validated() {
        // The closed-form oblivious latency (hops × mean) must match the
        // empirical mean on a clean overlay.
        let o = overlay(7);
        let scenario = o.scenario().clone();
        let model = sos_analysis::LatencyModel {
            per_hop_mean: 5.0,
            chord_transport: false,
            discipline: sos_analysis::ForwardingDiscipline::Oblivious,
        };
        let predicted = model.clean_latency(&scenario);
        let mut rng = StdRng::seed_from_u64(8);
        let d = measure_latency(
            &o,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            5.0,
            4_000,
            &mut rng,
        );
        assert!(
            (d.mean() - predicted).abs() < 0.05 * predicted,
            "empirical {} vs predicted {predicted}",
            d.mean()
        );
    }

    #[test]
    #[should_panic(expected = "per-hop mean must be positive")]
    fn bad_mean_rejected() {
        let o = overlay(9);
        let mut rng = StdRng::seed_from_u64(10);
        measure_latency(
            &o,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            0.0,
            10,
            &mut rng,
        );
    }
}
