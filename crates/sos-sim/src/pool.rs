//! Persistent worker pool for trial execution.
//!
//! [`Simulation::run_parallel`] spins up a fresh `crossbeam` scope —
//! and fresh per-worker [`TrialScratch`] state — for every call. That
//! is fine for one big simulation, but a *sweep* (dozens to hundreds of
//! small `SimulationConfig` points, the shape behind every figure
//! family) pays the spawn/join and scratch-construction cost once per
//! point. This module keeps one long-lived pool per process instead:
//!
//! * workers are spawned once and live for the process; each owns a
//!   [`TrialScratch`] that is rebuilt in place across *scenarios*, not
//!   just across trials of one scenario;
//! * a run is a list of [`RangeJob`]s (one per sweep point); workers
//!   pull trial batches through a two-level discipline — scan jobs from
//!   a shared head cursor, claim the next batch from the first job that
//!   still has unclaimed trials — so batches from neighboring sweep
//!   points interleave and a small tail point never leaves workers
//!   idle;
//! * the *calling* thread participates as a full worker (with a
//!   pool-owned scratch of its own), so a 1-thread pool executes
//!   entirely inline with no cross-thread handoff at all.
//!
//! Determinism: the pool decides only *who* runs a trial, never *what*
//! the trial is. Per-trial seeding makes every integer count
//! bit-identical to [`Simulation::run`], and batch partials are merged
//! in trial order over thread-count-independent batch boundaries (the
//! same contract as `run_parallel`), so a job's result — floats
//! included — is byte-identical at every thread count. The merge stays
//! per-job: each [`RangeJob`] collects its own batch [`Partial`]s, so
//! sweep points never mix.
//!
//! [`Simulation::run_parallel`]: crate::engine::Simulation::run_parallel

use crate::engine::{num_threads, Partial, Simulation, TrialQueue, TrialScratch};
use sos_observe::{telemetry, trace};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// One unit of pool work: run trials `start..end` of `sim` and merge
/// them into a single [`Partial`].
pub(crate) struct RangeJob {
    /// The simulation the trials belong to.
    pub sim: Arc<Simulation>,
    /// First trial index (inclusive).
    pub start: u64,
    /// Last trial index (exclusive); must be `> start`.
    pub end: u64,
    /// Whether completing this job counts as one sweep *point* for the
    /// live telemetry plane (true for sweep-executor jobs, false for
    /// the batch jobs of `run_until_precision`).
    pub point: bool,
}

/// Per-job execution state: the job's own work-stealing queue (over the
/// *local* index space `0..len`, offset by `base` at execution time)
/// and its private merge target.
struct JobSlot {
    sim: Arc<Simulation>,
    base: u64,
    queue: TrialQueue,
    /// `(batch_start, partial)` per executed batch, pushed in racy
    /// completion order and merged in start order at collection time.
    partial: Mutex<Vec<(u64, Partial)>>,
    /// Trials of this job not yet merged; hits zero exactly once, when
    /// the job completes (telemetry's per-point progress tick).
    remaining: AtomicU64,
    /// Total trials of the job (for the completion trace span).
    trials: u64,
    point: bool,
}

/// Completion state of one `run` call, updated under [`RunState::done`].
struct RunDone {
    /// Trials not yet merged into their job's partial.
    remaining: u64,
    /// Set when a worker thread panicked mid-run.
    poisoned: bool,
}

/// Shared state of one `run` call. Workers hold an `Arc` to it for the
/// duration of their participation, so a straggler can finish scanning
/// after the caller has already collected the results.
struct RunState {
    jobs: Vec<JobSlot>,
    /// Index of the first job that may still have unclaimed batches;
    /// monotonically advanced as job queues drain. A scan hint, not a
    /// claim: correctness only needs it to never skip an undrained job.
    head: AtomicUsize,
    /// Batches executed (for pool metrics).
    batches: AtomicU64,
    /// Set when request tracing was on at `run` entry: the anchor for
    /// per-point completion spans (reading a clock, never the RNG).
    trace_started: Option<Instant>,
    done: Mutex<RunDone>,
    done_cv: Condvar,
}

/// Pool-level coordination state, guarded by [`PoolShared::lock`].
struct PoolState {
    /// Bumped once per `run` call; workers use it to tell a new run
    /// from the one they just finished.
    epoch: u64,
    shutdown: bool,
    run: Option<Arc<RunState>>,
}

struct PoolShared {
    lock: Mutex<PoolState>,
    work_ready: Condvar,
}

/// Locks a std mutex, ignoring poisoning (the pool carries its own
/// panic flag; a poisoned coordination lock must not mask it).
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A long-lived pool of trial workers; see the module docs.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Scratch for the calling thread's participation — owned by the
    /// pool so it, too, is reused across scenarios and across runs.
    caller_scratch: TrialScratch,
}

impl WorkerPool {
    /// Creates a pool with `threads` total workers: `threads - 1`
    /// background threads plus the calling thread, which participates
    /// in every [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one pool thread");
        let shared = Arc::new(PoolShared {
            lock: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                run: None,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            caller_scratch: TrialScratch::persistent(),
        }
    }

    /// Executes every job and returns `(partials, batches)`: one merged
    /// [`Partial`] per job, in job order, plus the number of trial
    /// batches executed (for queue metrics). Blocks until all trials
    /// are merged; the calling thread works the queues alongside the
    /// background workers.
    ///
    /// # Panics
    ///
    /// Panics if any `RangeJob` has an empty range, or if a worker
    /// thread panicked while executing a trial.
    pub(crate) fn run(&mut self, jobs: Vec<RangeJob>) -> (Vec<Partial>, u64) {
        if jobs.is_empty() {
            return (Vec::new(), 0);
        }
        let mut total = 0u64;
        let slots: Vec<JobSlot> = jobs
            .into_iter()
            .map(|job| {
                assert!(job.end > job.start, "empty trial range");
                let len = job.end - job.start;
                total += len;
                JobSlot {
                    queue: TrialQueue::new(len),
                    base: job.start,
                    sim: job.sim,
                    partial: Mutex::new(Vec::new()),
                    remaining: AtomicU64::new(len),
                    trials: len,
                    point: job.point,
                }
            })
            .collect();
        telemetry::add_expected_trials(total);
        let run = Arc::new(RunState {
            jobs: slots,
            head: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            trace_started: trace::enabled().then(Instant::now),
            done: Mutex::new(RunDone {
                remaining: total,
                poisoned: false,
            }),
            done_cv: Condvar::new(),
        });

        if !self.workers.is_empty() {
            let mut state = lock_ignore_poison(&self.shared.lock);
            state.epoch += 1;
            state.run = Some(run.clone());
            drop(state);
            self.shared.work_ready.notify_all();
        }

        // The caller is a full worker: with a 1-thread pool this is the
        // entire run, inline, with zero synchronization beyond the
        // uncontended per-job locks.
        drain(&run, &mut self.caller_scratch);

        // Wait for background stragglers to merge their last batches.
        let mut done = lock_ignore_poison(&run.done);
        while done.remaining > 0 && !done.poisoned {
            done = run
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
        let poisoned = done.poisoned;
        drop(done);
        if !self.workers.is_empty() {
            lock_ignore_poison(&self.shared.lock).run = None;
        }
        assert!(!poisoned, "simulation worker panicked");

        // All trials merged and no queue has unclaimed batches, so no
        // worker will touch a partial again — taking them is safe even
        // if a straggler still holds the Arc while scanning.
        let partials = run
            .jobs
            .iter()
            .map(|slot| {
                let batches = std::mem::take(&mut *lock_ignore_poison(&slot.partial));
                Partial::merged_in_order(batches)
            })
            .collect();
        (partials, run.batches.load(Ordering::Relaxed))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_ignore_poison(&self.shared.lock).shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Marks the run poisoned if the worker unwinds mid-drain, so the
/// caller fails loudly instead of waiting forever on `remaining`.
struct PoisonGuard<'a> {
    run: &'a RunState,
    armed: bool,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            lock_ignore_poison(&self.run.done).poisoned = true;
            self.run.done_cv.notify_all();
        }
    }
}

/// Works the run's job queues until no unclaimed batch remains
/// anywhere. Shared by background workers and the calling thread.
fn drain(run: &RunState, scratch: &mut TrialScratch) {
    loop {
        let head = run.head.load(Ordering::Acquire);
        let mut claimed = None;
        for (i, slot) in run.jobs.iter().enumerate().skip(head) {
            if let Some((start, end)) = slot.queue.next_batch() {
                claimed = Some((slot, start, end));
                break;
            }
            if i == head {
                // This job's queue is fully claimed; advance the scan
                // hint so later workers skip it. CAS failure just means
                // someone else advanced it first.
                let _ = run.head.compare_exchange(
                    i,
                    i + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
        let Some((slot, start, end)) = claimed else {
            return;
        };
        if let Some(t) = telemetry::slot() {
            t.add_batch();
        }
        let mut batch_span = trace::start("pool-batch", trace::CAT_POOL);
        let mut partial = Partial::default();
        for trial in start..end {
            slot.sim
                .run_one_trial(slot.base + trial, &mut partial, scratch, None);
        }
        if let Some(span) = batch_span.as_mut() {
            span.arg("trials", end - start);
        }
        drop(batch_span); // record the batch claim's span now
        lock_ignore_poison(&slot.partial).push((start, partial));
        run.batches.fetch_add(1, Ordering::Relaxed);
        // The last batch of a job completes a sweep point.
        let batch_len = end - start;
        if slot.remaining.fetch_sub(batch_len, Ordering::AcqRel) == batch_len && slot.point {
            telemetry::point_done();
            if let Some(t0) = run.trace_started {
                trace::record_since(
                    "sweep-point",
                    trace::CAT_EXEC,
                    t0,
                    &[("trials", slot.trials)],
                );
            }
        }
        let mut done = lock_ignore_poison(&run.done);
        done.remaining -= end - start;
        if done.remaining == 0 {
            run.done_cv.notify_all();
        }
    }
}

/// Background worker: wait for a new run epoch, participate, repeat.
/// The scratch lives for the thread's lifetime — overlay/ring/route
/// allocations are reused across every scenario the pool ever runs.
fn worker_loop(shared: &PoolShared) {
    let mut scratch = TrialScratch::persistent();
    let mut last_epoch = 0u64;
    loop {
        let run = {
            let mut state = lock_ignore_poison(&shared.lock);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    if let Some(run) = &state.run {
                        last_epoch = state.epoch;
                        break run.clone();
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let mut guard = PoisonGuard {
            run: &run,
            armed: true,
        };
        drain(&run, &mut scratch);
        guard.armed = false;
    }
}

/// The process-wide pool used by the sweep executor and
/// [`Simulation::run_until_precision`], sized by
/// [`num_threads`](crate::engine::num_threads). Created on first use;
/// callers serialize on the mutex (runs are internally parallel, so
/// back-to-back runs beat interleaved ones).
///
/// [`Simulation::run_until_precision`]: crate::engine::Simulation::run_until_precision
pub(crate) fn global_pool() -> &'static Mutex<WorkerPool> {
    static POOL: OnceLock<Mutex<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(WorkerPool::new(num_threads())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{
        AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams,
    };
    use crate::engine::SimulationConfig;

    fn sim(seed: u64, trials: u64) -> Arc<Simulation> {
        let scenario = Scenario::builder()
            .system(SystemParams::new(500, 40, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        Arc::new(Simulation::new(
            SimulationConfig::new(
                scenario,
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(20, 100),
                },
            )
            .trials(trials)
            .routes_per_trial(20)
            .seed(seed),
        ))
    }

    #[test]
    fn pool_matches_run_parallel_at_any_thread_count() {
        let sims: Vec<Arc<Simulation>> = (0..5).map(|s| sim(s, 12)).collect();
        let reference: Vec<_> = sims
            .iter()
            .map(|s| s.run_parallel(2))
            .collect();
        for threads in [1, 2, 4, 8] {
            let mut pool = WorkerPool::new(threads);
            let jobs = sims
                .iter()
                .map(|s| RangeJob {
                    sim: s.clone(),
                    start: 0,
                    end: 12,
                    point: true,
                })
                .collect();
            let (partials, batches) = pool.run(jobs);
            assert!(batches > 0);
            for ((partial, s), reference) in
                partials.into_iter().zip(&sims).zip(&reference)
            {
                let result = s.finish(partial);
                assert_eq!(result.successes, reference.successes, "{threads} threads");
                assert_eq!(result.attempts, reference.attempts);
                assert_eq!(result.failure_depths, reference.failure_depths);
                assert!((result.per_trial.mean - reference.per_trial.mean).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let mut pool = WorkerPool::new(2);
        let s = sim(9, 8);
        let (first, _) = pool.run(vec![RangeJob { sim: s.clone(), start: 0, end: 8, point: true }]);
        let (second, _) = pool.run(vec![RangeJob { sim: s.clone(), start: 0, end: 8, point: true }]);
        let a = s.finish(first.into_iter().next().unwrap());
        let b = s.finish(second.into_iter().next().unwrap());
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn disjoint_ranges_of_one_simulation_sum_to_the_whole() {
        // run_until_precision's shape: the same simulation split into
        // consecutive ranges must reproduce the full run's counts.
        let s = sim(4, 30);
        let whole = s.run_parallel(1);
        let mut pool = WorkerPool::new(3);
        let (parts, _) = pool.run(vec![
            RangeJob { sim: s.clone(), start: 0, end: 10, point: false },
            RangeJob { sim: s.clone(), start: 10, end: 30, point: false },
        ]);
        let mut merged = Partial::default();
        for part in &parts {
            merged.merge(part);
        }
        let result = s.finish(merged);
        assert_eq!(result.successes, whole.successes);
        assert_eq!(result.attempts, whole.attempts);
        assert_eq!(result.failure_depths, whole.failure_depths);
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let mut pool = WorkerPool::new(2);
        let (partials, batches) = pool.run(Vec::new());
        assert!(partials.is_empty());
        assert_eq!(batches, 0);
    }
}
