//! Side-by-side comparison of the analytical evaluators and the Monte
//! Carlo ground truth — the data behind the `ablation-evaluator`
//! experiment and the validation tables in `EXPERIMENTS.md`.

use crate::engine::SimulationConfig;
use sos_analysis::{OneBurstAnalysis, SuccessiveAnalysis};
use sos_core::{AttackConfig, ConfigError, PathEvaluator, Scenario};

/// One comparison: a labelled configuration priced three ways.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Configuration label.
    pub label: String,
    /// Equation (1) with the paper's hypergeometric form on the
    /// *predicted* average-case compromise state.
    pub analytic_hypergeometric: f64,
    /// Equation (1) with the binomial relaxation on the predicted state.
    pub analytic_binomial: f64,
    /// Monte Carlo empirical `P_S`.
    pub simulated: f64,
    /// Lower bound of the 95% Wilson interval on the simulated value.
    pub simulated_lo: f64,
    /// Upper bound of the 95% Wilson interval.
    pub simulated_hi: f64,
    /// Trials behind the simulated value.
    pub trials: u64,
}

impl ComparisonRow {
    /// CSV header matching [`std::fmt::Display`] output.
    pub const CSV_HEADER: &'static str =
        "label,analytic_hypergeometric,analytic_binomial,simulated,sim_lo,sim_hi,trials";

    /// Absolute gap between the binomial prediction and the simulation.
    pub fn binomial_gap(&self) -> f64 {
        (self.analytic_binomial - self.simulated).abs()
    }

    /// Absolute gap between the hypergeometric prediction and the
    /// simulation.
    pub fn hypergeometric_gap(&self) -> f64 {
        (self.analytic_hypergeometric - self.simulated).abs()
    }
}

impl std::fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
            self.label,
            self.analytic_hypergeometric,
            self.analytic_binomial,
            self.simulated,
            self.simulated_lo,
            self.simulated_hi,
            self.trials
        )
    }
}

/// Prices one `(scenario, attack)` configuration with both analytical
/// evaluators and a Monte Carlo run.
///
/// # Errors
///
/// Propagates [`ConfigError`] from the analytical models (invalid
/// budgets etc.).
pub fn compare_models(
    label: impl Into<String>,
    scenario: &Scenario,
    attack: AttackConfig,
    trials: u64,
    routes_per_trial: u64,
    seed: u64,
) -> Result<ComparisonRow, ConfigError> {
    let (hyper, binom) = match attack {
        AttackConfig::OneBurst { budget } => {
            let report = OneBurstAnalysis::new(scenario, budget)?.run();
            (
                report
                    .success_probability(PathEvaluator::Hypergeometric)
                    .value(),
                report.success_probability(PathEvaluator::Binomial).value(),
            )
        }
        AttackConfig::Successive { budget, params } => {
            let report = SuccessiveAnalysis::new(scenario, budget, params)?.run();
            (
                report
                    .success_probability(PathEvaluator::Hypergeometric)
                    .value(),
                report.success_probability(PathEvaluator::Binomial).value(),
            )
        }
    };
    // Through the sweep executor rather than a one-off run_parallel:
    // evaluator-ablation grids call this once per cell, and the shared
    // cache turns repeated cells (across figure families or warm CLI
    // runs) into lookups.
    let sim = crate::sweep::run_sweep(&[SimulationConfig::new(scenario.clone(), attack)
        .trials(trials)
        .routes_per_trial(routes_per_trial)
        .seed(seed)])
    .remove(0);
    let ci = sim.confidence_interval(0.95);
    Ok(ComparisonRow {
        label: label.into(),
        analytic_hypergeometric: hyper,
        analytic_binomial: binom,
        simulated: sim.success_rate(),
        simulated_lo: ci.lower,
        simulated_hi: ci.upper,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{AttackBudget, MappingDegree, SystemParams};

    fn scenario(mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::new(1_000, 60, 0.5).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    #[test]
    fn row_formats_as_csv() {
        let row = ComparisonRow {
            label: "demo".into(),
            analytic_hypergeometric: 1.0,
            analytic_binomial: 0.9,
            simulated: 0.85,
            simulated_lo: 0.8,
            simulated_hi: 0.9,
            trials: 10,
        };
        let csv = row.to_string();
        assert!(csv.starts_with("demo,1.000000,0.900000,0.850000"));
        assert_eq!(ComparisonRow::CSV_HEADER.split(',').count(), csv.split(',').count());
        assert!((row.binomial_gap() - 0.05).abs() < 1e-12);
        assert!((row.hypergeometric_gap() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn compare_runs_end_to_end() {
        let row = compare_models(
            "one-to-one congestion",
            &scenario(MappingDegree::ONE_TO_ONE),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 200),
            },
            60,
            60,
            3,
        )
        .unwrap();
        // For one-to-one pure congestion all three agree closely.
        assert!(row.binomial_gap() < 0.06, "{row}");
        assert!(row.hypergeometric_gap() < 0.06, "{row}");
        assert!(row.simulated_lo <= row.simulated && row.simulated <= row.simulated_hi);
    }

    #[test]
    fn hypergeometric_saturation_is_visible() {
        // One-to-half pure congestion with s_i < m_i (30% congested,
        // 50% neighbors): the paper's evaluator says P_S = 1 exactly,
        // the simulation says slightly less — the gap the design docs
        // call out.
        let row = compare_models(
            "one-to-half congestion",
            &scenario(MappingDegree::OneToHalf),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 300),
            },
            40,
            40,
            4,
        )
        .unwrap();
        assert_eq!(row.analytic_hypergeometric, 1.0);
        assert!(row.simulated <= 1.0);
    }
}
