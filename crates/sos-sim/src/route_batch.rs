//! Batched structure-of-arrays route evaluation.
//!
//! The scalar trial loop routed `routes_per_trial` messages one at a
//! time through [`route_message_hint`](crate::routing::route_message_hint), touching the per-trial shared
//! state — layer membership, neighbor tables, the position-indexed
//! `NodeBitSet` liveness words, the Chord finger rows — once *per
//! route*. This kernel evaluates all routes of a trial as parallel
//! *lanes* over that shared state instead:
//!
//! * one entry-point sampling pass seeds every lane of a chunk up
//!   front (each lane drawing from its own RNG sub-stream);
//! * lanes then advance **layer by layer** in lock step — the greedy
//!   policies cross exactly one layer per step, so after `k` steps
//!   every live lane sits in layer `k` and the step touches one
//!   layer's membership words and neighbor rows for the whole chunk;
//! * Chord substrate hops are resolved through a per-trial
//!   `(from, to) → hops` memo. A miss runs one *traced* masked walk
//!   ([`ChordRing::lookup_avoiding_hops_masked_traced`]) and splices
//!   the walk's suffix answers — every intermediate node's remaining
//!   hops to the target — into the memo alongside it, so walks toward
//!   a shared target converge onto already-priced tails instead of
//!   re-walking the finger rows per route.
//!
//! # Determinism
//!
//! Every route draws from its own splitmix64 sub-stream
//! ([`route_lane_seed`](crate::route_lane_seed), stream tag
//! [`stream::ROUTE`](crate::stream::ROUTE)), so lane order, chunking
//! and batch width *cannot* perturb draws: a lane's draw sequence is a
//! pure function of `(seed, trial, route)`. The fast paths below are
//! faithful specializations of [`route_message_hint`](crate::routing::route_message_hint) to the
//! fault-free case: layer-synchronous lanes for the greedy policies,
//! and a memo-backed DFS (parent-pointer frames instead of a cloned
//! path `Vec` per frame, hops from the shared per-trial Chord memo)
//! for backtracking. When neither applies (an active fault plan, a
//! protocol transport, or batch width 1) each lane runs the scalar
//! oracle itself with its lane RNG — trivially identical. Faulted
//! Chord lanes still share the per-trial hop memo through the oracle
//! (hop pricing is a pure function of `(from, to, mask)`; fault draws
//! never enter the substrate walk, so memoization cannot perturb the
//! plan's counted streams).
//! Tests in `tests/route_batch.rs` pin lane-for-lane equality against
//! the oracle (including RNG end state) and byte-identity of
//! `run_parallel`/`run_sweep` across widths 1/4/16/64.

use crate::routing::{route_message_hint_priced, RouteResult, RouteScratch, RoutingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sos_faults::{FaultPlan, RetryPolicy};
use sos_math::sampling::{shuffle, stream_seed, IndexSampler};
use sos_overlay::transport::DeliveryOutcome;
use sos_overlay::{ChordRing, NodeBitSet, NodeId, Overlay, Role, Transport};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Memoized "blocked" marker (hops are at most ring-length-bounded, so
/// `u32::MAX` is unreachable as a real hop count).
const BLOCKED: u32 = u32::MAX;

/// The per-trial hop memo. Keys are packed `(from, to)` pairs, already
/// well-mixed by [`HopHasher`]'s splitmix64 finalizer, so the default
/// SipHash (designed for untrusted keys) is pure overhead here — a
/// failing backtracking DFS probes the memo for every edge of the
/// reachable component.
type HopMemo = HashMap<u64, u32, BuildHasherDefault<HopHasher>>;

/// splitmix64-finalizer hasher for the `u64` hop-memo keys.
#[derive(Debug, Default)]
struct HopHasher(u64);

impl Hasher for HopHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys reach this hasher; mix arbitrary bytes anyway
        // so the type stays a correct (if slower) general hasher.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut z = (self.0 ^ n).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

/// One route lane: its RNG sub-stream, its candidate frontier, and the
/// result being built.
#[derive(Debug)]
struct Lane {
    rng: StdRng,
    candidates: Vec<NodeId>,
    current: Option<NodeId>,
    done: bool,
    result: RouteResult,
}

impl Lane {
    fn new() -> Self {
        Lane {
            rng: StdRng::seed_from_u64(0),
            candidates: Vec::new(),
            current: None,
            done: false,
            result: RouteResult::default(),
        }
    }
}

/// Reusable per-worker state of the batched route kernel: lane buffers,
/// the entry-sampling scratch, and the per-trial Chord hop memo.
///
/// Lives inside the engine's `TrialScratch`, so like every other hot
/// buffer it reaches a zero-allocation steady state after the first
/// trial (the memo's hash table keeps its capacity across trials).
#[derive(Debug, Default)]
pub struct RouteBatchScratch {
    lanes: Vec<Lane>,
    sampler: IndexSampler,
    /// Per-trial Chord hop memo: `(from << 32 | to) → hops` (or
    /// [`BLOCKED`]). Valid for one trial because the alive mask and
    /// node statuses are fixed once routing starts.
    memo: HopMemo,
    /// Walk-trace buffer for suffix splicing (see [`memo_chord_hops`]).
    trace: Vec<NodeId>,
    /// Backtracking-lane buffers: the DFS frame arena, the index stack,
    /// the per-expansion neighbor shuffle buffer and the visited set.
    bt_frames: Vec<BtFrame>,
    bt_stack: Vec<u32>,
    bt_neighbors: Vec<NodeId>,
    bt_visited: NodeBitSet,
}

/// One DFS frame of the backtracking fast lane. The scalar oracle
/// clones the whole path `Vec` into every frame; here a frame holds a
/// parent index instead and the path is rebuilt by walking the chain
/// only when a new deepest layer is reached.
#[derive(Debug, Clone, Copy)]
struct BtFrame {
    node: NodeId,
    /// Index of the parent frame, or [`NO_PARENT`] for entry frames.
    parent: u32,
    /// Underlay hops of the path ending at `node` (client hop included).
    hops: u32,
}

/// Parent marker for DFS roots (frame arenas stay far below `u32::MAX`).
const NO_PARENT: u32 = u32::MAX;

impl RouteBatchScratch {
    /// Fresh, empty kernel scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new trial: invalidates the Chord hop memo (statuses and
    /// the alive mask change between trials; lane buffers are reset per
    /// chunk by [`evaluate`](Self::evaluate)).
    pub fn begin_trial(&mut self) {
        self.memo.clear();
    }

    /// Evaluates routes `first_route .. first_route + count` of a trial
    /// as `count` lanes; results are read back with
    /// [`result`](Self::result), index-aligned with the chunk.
    ///
    /// `route_master` is the trial's `ROUTE` master stream
    /// (`trial_stream_seed(seed, stream::ROUTE, trial)`); lane `k`
    /// seeds its RNG with `stream_seed(route_master, ROUTE,
    /// first_route + k)` — the same derivation as
    /// [`route_lane_seed`](crate::route_lane_seed).
    ///
    /// With `batched = false` (or whenever no fast path applies:
    /// active faults, protocol transport) every lane runs the scalar
    /// [`route_message_hint`](crate::routing::route_message_hint) oracle through `oracle` scratch; results
    /// are identical either way.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &mut self,
        overlay: &Overlay,
        transport: &Transport,
        policy: RoutingPolicy,
        faults: Option<&FaultPlan>,
        retry: &RetryPolicy,
        route_master: u64,
        first_route: u64,
        count: usize,
        alive: Option<&NodeBitSet>,
        oracle: &mut RouteScratch,
        batched: bool,
    ) {
        if self.lanes.len() < count {
            self.lanes.resize_with(count, Lane::new);
        }
        let fast = batched
            && faults.is_none()
            && matches!(transport, Transport::Direct | Transport::Chord(_));
        if !fast {
            // Faulted Chord lanes still pool the per-trial hop memo:
            // substrate pricing is a pure function of `(from, to, mask)`
            // (the mask already encodes benign crashes), so the memo
            // changes no outcomes and draws nothing from the plan's
            // counted fault streams. The oracle runs lanes in route
            // order, preserving the scalar draw sequence exactly.
            let RouteBatchScratch { lanes, memo, trace, .. } = self;
            let mut pricer = match (batched, transport, alive) {
                (true, Transport::Chord(ring), Some(mask)) => {
                    Some(ChordMemoPricer { ring, mask, memo, trace })
                }
                _ => None,
            };
            for (k, lane) in lanes[..count].iter_mut().enumerate() {
                let seed = stream_seed(route_master, crate::stream::ROUTE, first_route + k as u64);
                lane.rng = StdRng::seed_from_u64(seed);
                let r = route_message_hint_priced(
                    overlay,
                    transport,
                    policy,
                    faults,
                    retry,
                    &mut lane.rng,
                    oracle,
                    alive,
                    pricer.as_mut(),
                );
                lane.result.clone_from(r);
            }
            return;
        }

        let RouteBatchScratch {
            lanes,
            sampler,
            memo,
            trace,
            bt_frames,
            bt_stack,
            bt_neighbors,
            bt_visited,
        } = self;
        let lanes = &mut lanes[..count];
        let last_layer = overlay.layer_count() + 1;

        // One entry-sampling pass for the whole chunk: each lane draws
        // its entry set from its own sub-stream, exactly as the scalar
        // oracle's `sample_entry_points_into` would.
        for (k, lane) in lanes.iter_mut().enumerate() {
            let seed = stream_seed(route_master, crate::stream::ROUTE, first_route + k as u64);
            lane.rng = StdRng::seed_from_u64(seed);
            overlay.sample_entry_points_into(&mut lane.rng, sampler, &mut lane.candidates);
            lane.result.reset();
            lane.current = None;
            lane.done = false;
        }

        if policy == RoutingPolicy::Backtracking {
            // Backtracking lanes run sequentially (a DFS has no layer
            // lock-step to share) but still pool the per-trial Chord
            // hop memo: every edge any lane has priced is free for all
            // later lanes of the trial.
            for lane in lanes.iter_mut() {
                backtracking_lane(
                    overlay,
                    transport,
                    alive,
                    memo,
                    trace,
                    lane,
                    bt_frames,
                    bt_stack,
                    bt_neighbors,
                    bt_visited,
                    last_layer,
                );
            }
            return;
        }

        // Layer-synchronous advancement: each pass moves every live
        // lane across exactly one layer (greedy routing's invariant),
        // touching that layer's shared state once for the chunk.
        let mut active = count;
        while active > 0 {
            // Per-lane frontier ordering first (RandomGood consumes one
            // shuffle from the lane's stream, like the oracle).
            if policy == RoutingPolicy::RandomGood {
                for lane in lanes.iter_mut().filter(|l| !l.done) {
                    shuffle(&mut lane.rng, &mut lane.candidates);
                }
            }
            for lane in lanes.iter_mut() {
                if lane.done {
                    continue;
                }
                let mut next = None;
                for &cand in lane.candidates.iter() {
                    let hops = match lane.current {
                        // Client → first layer: plain reachability (no
                        // fault plane on the fast path).
                        None => overlay.is_good(cand).then_some(1usize),
                        Some(v) => hop_hops(overlay, transport, v, cand, alive, memo, trace),
                    };
                    if let Some(h) = hops {
                        next = Some((cand, h));
                        break;
                    }
                }
                let Some((node, hops)) = next else {
                    lane.done = true;
                    active -= 1;
                    continue;
                };
                lane.result.underlay_hops += hops;
                lane.result.path.push(node);
                let layer = overlay
                    .layer_of(node)
                    .expect("routed nodes are always infrastructure");
                lane.result.deepest_layer = layer;
                if layer == last_layer {
                    lane.result.delivered = true;
                    lane.done = true;
                    active -= 1;
                } else {
                    lane.candidates.clear();
                    lane.candidates.extend_from_slice(overlay.neighbors(node));
                    lane.current = Some(node);
                }
            }
        }
    }

    /// The result of lane `k` of the last [`evaluate`](Self::evaluate)
    /// chunk (route `first_route + k`).
    pub fn result(&self, k: usize) -> &RouteResult {
        &self.lanes[k].result
    }
}

/// The fault-free backtracking DFS, mirroring the scalar
/// `backtracking_route` draw for draw (entry shuffle, then one
/// neighbor shuffle per expanded frame) and decision for decision —
/// only the bookkeeping differs: frames carry a parent index instead
/// of a cloned path `Vec`, and Chord hops come from the shared
/// per-trial memo instead of a fresh finger walk per edge.
#[allow(clippy::too_many_arguments)]
fn backtracking_lane(
    overlay: &Overlay,
    transport: &Transport,
    alive: Option<&NodeBitSet>,
    memo: &mut HopMemo,
    trace: &mut Vec<NodeId>,
    lane: &mut Lane,
    frames: &mut Vec<BtFrame>,
    stack: &mut Vec<u32>,
    neighbors_buf: &mut Vec<NodeId>,
    visited: &mut NodeBitSet,
    last_layer: usize,
) {
    shuffle(&mut lane.rng, &mut lane.candidates);
    visited.clear();
    frames.clear();
    stack.clear();
    let result = &mut lane.result;
    let mut best_prefix_hops = 0usize;
    for &entry in lane.candidates.iter() {
        if overlay.is_good(entry) {
            frames.push(BtFrame {
                node: entry,
                parent: NO_PARENT,
                hops: 1, // client → entry contact
            });
            stack.push((frames.len() - 1) as u32);
        }
    }
    while let Some(fi) = stack.pop() {
        let BtFrame { node, hops, .. } = frames[fi as usize];
        if !visited.insert(node) {
            continue;
        }
        let layer = overlay
            .layer_of(node)
            .expect("routed nodes are always infrastructure");
        if layer > result.deepest_layer {
            result.deepest_layer = layer;
            rebuild_path(frames, fi, &mut result.path);
            best_prefix_hops = hops as usize;
        }
        if layer == last_layer {
            result.delivered = true;
            result.underlay_hops = hops as usize;
            return;
        }
        neighbors_buf.clear();
        neighbors_buf.extend_from_slice(overlay.neighbors(node));
        shuffle(&mut lane.rng, neighbors_buf);
        for &next in neighbors_buf.iter() {
            if visited.contains(next) {
                continue;
            }
            if let Some(edge) = hop_hops(overlay, transport, node, next, alive, memo, trace) {
                frames.push(BtFrame {
                    node: next,
                    parent: fi,
                    hops: hops + edge as u32,
                });
                stack.push((frames.len() - 1) as u32);
            }
        }
    }
    result.underlay_hops = best_prefix_hops;
}

/// Rebuilds the node path ending at frame `fi` by walking the parent
/// chain (root-first order after the reverse).
fn rebuild_path(frames: &[BtFrame], mut fi: u32, path: &mut Vec<NodeId>) {
    path.clear();
    loop {
        let frame = &frames[fi as usize];
        path.push(frame.node);
        if frame.parent == NO_PARENT {
            break;
        }
        fi = frame.parent;
    }
    path.reverse();
}

/// Fault-free hop delivery, mirroring `Transport::deliver_hint` exactly
/// but resolving Chord lookups through the per-trial memo.
#[inline]
fn hop_hops(
    overlay: &Overlay,
    transport: &Transport,
    from: NodeId,
    to: NodeId,
    alive: Option<&NodeBitSet>,
    memo: &mut HopMemo,
    trace: &mut Vec<NodeId>,
) -> Option<usize> {
    if !overlay.is_good(to) {
        return None;
    }
    match transport {
        Transport::Direct => Some(1),
        Transport::Chord(ring) => {
            if overlay.role(to) == Role::Filter {
                return Some(1);
            }
            let hops = memo_chord_hops(ring, overlay, from, to, alive, memo, trace);
            (hops != BLOCKED).then_some(hops as usize)
        }
        // The fast path never runs on other transports (see `evaluate`);
        // fall back to the canonical delivery for completeness.
        other => match other.deliver_hint(overlay, from, to, alive) {
            DeliveryOutcome::Delivered { hops } => Some(hops),
            _ => None,
        },
    }
}

/// Resolves a Chord hop `(from, to)` through the per-trial memo,
/// pricing a miss with one *traced* masked walk and splicing the walk's
/// suffix answers into the memo alongside it: intermediate `i` of a
/// delivered `h`-hop walk sits `h - (i + 1)` hops from the owner, and
/// every intermediate of a stuck walk is on the same dead-end suffix
/// (the greedy step is memoryless — see
/// [`ChordRing::lookup_avoiding_hops_masked_traced`]). Encodes exactly
/// `Transport::deliver_hint`'s Chord arm: hops-or-[`BLOCKED`], owner
/// must be `to`.
fn memo_chord_hops(
    ring: &ChordRing,
    overlay: &Overlay,
    from: NodeId,
    to: NodeId,
    alive: Option<&NodeBitSet>,
    memo: &mut HopMemo,
    trace: &mut Vec<NodeId>,
) -> u32 {
    let mkey = memo_key(from, to);
    if let Some(&hops) = memo.get(&mkey) {
        return hops;
    }
    let key = ring
        .id_of(to)
        .unwrap_or_else(|| panic!("{to} is not on the ring"));
    let hops = match alive {
        Some(mask) => {
            let outcome = ring.lookup_avoiding_hops_masked_traced(from, key, mask, trace);
            let hops = encode_chord_outcome(outcome, to);
            for (i, &mid) in trace.iter().enumerate() {
                // Intermediates strictly precede the owner, so their
                // remaining hop counts stay >= 1 (`max(1)` vacuous).
                let suffix = if hops == BLOCKED { BLOCKED } else { hops - (i as u32 + 1) };
                memo.insert(memo_key(mid, to), suffix);
            }
            hops
        }
        None => {
            let outcome =
                ring.lookup_avoiding_hops(from, key, |n| n == from || overlay.is_good(n));
            encode_chord_outcome(outcome, to)
        }
    };
    memo.insert(mkey, hops);
    hops
}

/// Encodes a lookup outcome the way the memo stores hop answers:
/// delivered-to-the-right-owner as `hops.max(1)`, anything else as
/// [`BLOCKED`] — decision for decision `Transport::deliver_hint`'s
/// Chord arm.
#[inline]
fn encode_chord_outcome(outcome: Option<(NodeId, usize)>, to: NodeId) -> u32 {
    match outcome {
        Some((owner, hops)) if owner == to => hops.max(1) as u32,
        _ => BLOCKED,
    }
}

/// Memo-backed substrate pricing for the *faulted* oracle path: a
/// plug-in replacement for `Transport::attempt_via_substrate`'s Chord
/// arm (filter shortcut, then the masked avoiding lookup), valid
/// because that pricing is a pure function of `(from, to, mask)` for
/// the whole trial. Installed by [`RouteBatchScratch::evaluate`] via
/// [`Transport::deliver_with_hint_priced`]; consumes no randomness, so
/// the plan's counted fault streams see exactly the scalar sequence.
pub(crate) struct ChordMemoPricer<'a> {
    ring: &'a ChordRing,
    mask: &'a NodeBitSet,
    memo: &'a mut HopMemo,
    trace: &'a mut Vec<NodeId>,
}

impl ChordMemoPricer<'_> {
    /// One substrate pricing, mirroring the Chord arm of
    /// `Transport::attempt_via_substrate` (the destination is already
    /// checked good and not crashed by the delivery ladder).
    pub(crate) fn price(&mut self, overlay: &Overlay, from: NodeId, to: NodeId) -> DeliveryOutcome {
        if overlay.role(to) == Role::Filter {
            return DeliveryOutcome::Delivered { hops: 1 };
        }
        let hops = memo_chord_hops(
            self.ring,
            overlay,
            from,
            to,
            Some(self.mask),
            self.memo,
            self.trace,
        );
        if hops == BLOCKED {
            DeliveryOutcome::Blocked
        } else {
            DeliveryOutcome::Delivered { hops: hops as usize }
        }
    }
}

#[inline]
fn memo_key(from: NodeId, to: NodeId) -> u64 {
    (u64::from(from.0) << 32) | u64::from(to.0)
}
