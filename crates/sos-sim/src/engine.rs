//! The Monte Carlo trial runner.
//!
//! A *trial* is one attacked overlay: build a fresh overlay from the
//! scenario, execute the configured attack on it, then fire
//! `routes_per_trial` client messages through the wreckage and count
//! deliveries. The empirical `P_S` is the delivery fraction over all
//! trials; a Wilson interval quantifies the Monte Carlo error.
//!
//! Trials are seeded as `seed ⊕ trial-index`, so results are
//! reproducible and independent of the number of worker threads.
//!
//! The runner is *zero-rebuild*: each worker owns a `TrialScratch`
//! whose overlay, Chord ring, member list and route buffers are built
//! once and then rebuilt in place ([`Overlay::build_into`],
//! [`ChordRing::build_into`]) — the steady-state trial loop performs no
//! overlay/ring/routing heap allocation. Parallel runs pull trial
//! batches from an atomic work-stealing queue (`TrialQueue`) instead
//! of pre-chunking, so a worker that lands cheap trials steals more
//! work instead of idling; seeding stays per-trial, so the result is
//! bit-identical at any thread count.

use crate::route_batch::RouteBatchScratch;
use crate::routing::{RouteIncident, RouteIncidentKind, RouteScratch, RoutingPolicy};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use sos_attack::{OneBurstAttacker, SuccessiveAttacker};
use sos_core::{AttackConfig, PathEvaluator, Scenario};
use sos_faults::{Fallback, FaultConfig, FaultPlan, HopIncident, RetryPolicy};
use sos_math::stats::{proportion_ci, ConfidenceInterval, RunningStats, SummaryStats};
use sos_observe::telemetry::{self, PhaseKind, PhaseTimer};
use sos_observe::{Event, EventKind, FallbackMode, FaultClass, MetricsRegistry, Phase, Recorder};
use sos_overlay::{ChordRing, NodeBitSet, NodeId, Overlay, Transport};

/// Stream tags for [`trial_stream_seed`]: each per-trial RNG stream is
/// keyed by one of these, so streams are mutually decorrelated and a
/// consumer that *skips* one stream (a memoized build, a disabled
/// trace) cannot perturb any other.
pub mod stream {
    /// Overlay construction (membership + neighbor tables).
    pub const OVERLAY_BUILD: u64 = 1;
    /// Chord ring construction (ring ids).
    pub const RING_BUILD: u64 = 2;
    /// Attack execution and message routing.
    pub const ATTACK: u64 = 3;
    /// Traced-run Chord lookup sampling (observability only).
    pub const TRACE: u64 = 4;
    /// Per-route message-routing lanes: each route of a trial draws from
    /// its own sub-stream keyed twice through this tag (see
    /// [`route_lane_seed`](super::route_lane_seed)), so the batched
    /// route kernel's lane order and batch width cannot perturb draws.
    pub const ROUTE: u64 = 5;
}

/// The seed of one `(master seed, stream, trial)` RNG stream: a
/// splitmix64-mixed key (see [`sos_math::sampling::stream_seed`]).
///
/// This is *the* derivation the trial runner uses; `sos-bench`'s
/// reference oracle re-derives the same streams through this function,
/// so a mismatch is impossible by construction. Unlike the old
/// `seed ^ trial * C` scheme, trial 0 of distinct streams no longer
/// collapses to the master seed.
pub fn trial_stream_seed(seed: u64, stream: u64, trial: u64) -> u64 {
    sos_math::sampling::stream_seed(seed, stream, trial)
}

/// Process-global switch for per-worker build memoization (on by
/// default). Sweeps whose points share a structural configuration reuse
/// built overlays/rings at equal trial indices; turning this off forces
/// every trial to rebuild from scratch. Results are bit-identical
/// either way (pinned by tests) — the switch exists for benchmarks and
/// for proving exactly that.
static BUILD_REUSE: AtomicBool = AtomicBool::new(true);

/// Enables or disables per-worker build memoization (on by default;
/// see [`build_reuse_enabled`]). Results are bit-identical either way —
/// the switch exists for benchmarks and for proving exactly that.
pub fn set_build_reuse(enabled: bool) {
    BUILD_REUSE.store(enabled, Ordering::Relaxed);
}

/// Whether build memoization is currently enabled.
pub fn build_reuse_enabled() -> bool {
    BUILD_REUSE.load(Ordering::Relaxed)
}

/// The RNG seed of one route lane: the trial's `ROUTE` master stream
/// (`trial_stream_seed(seed, stream::ROUTE, trial)`) keyed once more by
/// the route index. Every route of every trial owns an independent
/// splitmix64 sub-stream, so evaluating routes in lanes, in chunks, or
/// one at a time consumes exactly the same draws per route.
///
/// Like [`trial_stream_seed`], this is *the* derivation — `sos-bench`'s
/// scalar reference oracle calls this same function.
pub fn route_lane_seed(seed: u64, trial: u64, route: u64) -> u64 {
    sos_math::sampling::stream_seed(
        trial_stream_seed(seed, stream::ROUTE, trial),
        stream::ROUTE,
        route,
    )
}

/// Process-global width of the batched route-evaluation kernel
/// (default 64 lanes). Width 1 forces the per-lane scalar oracle
/// ([`routing::route_message_hint`](crate::routing::route_message_hint))
/// for every route; any width produces byte-identical results (pinned
/// by tests) because each route draws from its own
/// [`route_lane_seed`] sub-stream — the knob exists for benchmarks and
/// for proving exactly that.
static ROUTE_BATCH_WIDTH: AtomicUsize = AtomicUsize::new(64);

/// Sets the route-kernel batch width (clamped to at least 1; width 1 =
/// scalar oracle mode). See [`route_batch_width`].
pub fn set_route_batch_width(width: usize) {
    ROUTE_BATCH_WIDTH.store(width.max(1), Ordering::Relaxed);
}

/// The current route-kernel batch width.
pub fn route_batch_width() -> usize {
    ROUTE_BATCH_WIDTH.load(Ordering::Relaxed)
}

/// Which transport realizes each overlay hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Direct messages — the paper's abstraction.
    #[default]
    Direct,
    /// Chord-routed hops (a fresh ring per trial, covering all overlay
    /// nodes).
    Chord,
}

impl TransportKind {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::Direct => "direct",
            TransportKind::Chord => "chord",
        }
    }
}

/// Configuration of a Monte Carlo estimate.
///
/// Fields are crate-visible so the sweep executor ([`crate::sweep`])
/// can fingerprint a config without round-tripping through builders.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    pub(crate) scenario: Scenario,
    pub(crate) attack: AttackConfig,
    pub(crate) policy: RoutingPolicy,
    pub(crate) transport: TransportKind,
    pub(crate) trials: u64,
    pub(crate) routes_per_trial: u64,
    pub(crate) seed: u64,
    pub(crate) monitoring_tap: Option<f64>,
    pub(crate) faults: FaultConfig,
    pub(crate) retry: RetryPolicy,
}

impl SimulationConfig {
    /// Creates a config with defaults: 100 trials × 100 routes, direct
    /// transport, random-good routing, seed 0.
    pub fn new(scenario: Scenario, attack: AttackConfig) -> Self {
        SimulationConfig {
            scenario,
            attack,
            policy: RoutingPolicy::default(),
            transport: TransportKind::default(),
            trials: 100,
            routes_per_trial: 100,
            seed: 0,
            monitoring_tap: None,
            faults: FaultConfig::none(),
            retry: RetryPolicy::none(),
        }
    }

    /// Upgrades a successive attack to the traffic-monitoring attacker
    /// (§5 future work) with the given tap probability.
    ///
    /// # Panics
    ///
    /// Panics if the configured attack is not
    /// [`AttackConfig::Successive`] (the monitoring extension is
    /// defined on the round-based model) or `tap` is outside `[0, 1]`.
    pub fn monitoring_tap(mut self, tap: f64) -> Self {
        assert!(
            matches!(self.attack, AttackConfig::Successive { .. }),
            "monitoring requires the successive attack model"
        );
        assert!((0.0..=1.0).contains(&tap), "tap probability out of range");
        self.monitoring_tap = Some(tap);
        self
    }

    /// Sets the routing policy.
    pub fn policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the transport kind.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the number of independent attacked overlays.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn trials(mut self, trials: u64) -> Self {
        assert!(trials > 0, "at least one trial is required");
        self.trials = trials;
        self
    }

    /// Sets the number of client messages routed per trial.
    ///
    /// # Panics
    ///
    /// Panics if `routes == 0`.
    pub fn routes_per_trial(mut self, routes: u64) -> Self {
        assert!(routes > 0, "at least one route per trial is required");
        self.routes_per_trial = routes;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables deterministic benign-fault injection (`sos-faults`).
    ///
    /// With [`FaultConfig::none`] (the default) the fault plane is never
    /// built and results are bit-identical to a fault-free build.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-hop retry/backoff policy applied when faults are
    /// enabled. Without faults the policy is inert.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The attack under test.
    pub fn attack(&self) -> &AttackConfig {
        &self.attack
    }

    /// The configured number of independent attacked overlays.
    pub fn configured_trials(&self) -> u64 {
        self.trials
    }
}

/// A configured Monte Carlo estimator.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct Partial {
    successes: u64,
    attempts: u64,
    per_trial: RunningStats,
    hyper_ps: RunningStats,
    binom_ps: RunningStats,
    hops: RunningStats,
    /// failure_depths[d] = routes that died having reached layer d
    /// (0 = no usable entry point; L+1 unused — those delivered).
    failure_depths: Vec<u64>,
}

/// Per-worker observability state for traced runs: the shared recorder
/// plus a worker-local metrics registry (merged once at the end, so
/// workers never contend on metric updates).
pub(crate) struct Observation<'a> {
    recorder: &'a dyn Recorder,
    metrics: MetricsRegistry,
}

/// Chord lookups sampled per trial in traced runs (drawn from the ring
/// stream, so the attack/routing stream — and therefore the result —
/// is identical to an untraced run).
const TRACED_LOOKUP_SAMPLES: usize = 8;

impl Observation<'_> {
    /// Records `kind` at tick `*t` and advances the tick. The tick
    /// advances even when the recorder is disabled so metrics that
    /// measure phase durations in ticks stay recorder-independent.
    fn emit(&mut self, t: &mut u64, trial: u64, kind: EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(Event::new(*t, trial, kind));
        }
        *t += 1;
    }
}

/// Maps one routing-layer fault/retry/downgrade incident onto the
/// `sos-observe` event taxonomy and the fault-plane metric counters.
fn emit_incident(o: &mut Observation<'_>, t: &mut u64, trial: u64, incident: &RouteIncident) {
    let (from, to) = (incident.from, incident.to);
    let kind = match incident.kind {
        RouteIncidentKind::Hop(hop) => match hop {
            HopIncident::Loss { .. } => {
                Some(EventKind::FaultInjected { from, to, fault: FaultClass::Loss, ticks: 0 })
            }
            HopIncident::Delay { ticks } => {
                Some(EventKind::FaultInjected { from, to, fault: FaultClass::Delay, ticks })
            }
            HopIncident::CrashedDestination | HopIncident::CrashedRoute => {
                Some(EventKind::FaultInjected { from, to, fault: FaultClass::Crash, ticks: 0 })
            }
            HopIncident::Slow { ticks } => {
                Some(EventKind::FaultInjected { from, to, fault: FaultClass::Slow, ticks })
            }
            HopIncident::Misroute { .. } => {
                Some(EventKind::FaultInjected { from, to, fault: FaultClass::Misroute, ticks: 0 })
            }
            HopIncident::Retry { attempt, backoff } => {
                Some(EventKind::HopRetry { from, to, attempt, backoff })
            }
            // A spent deadline is already implied by the lack of further
            // retries; it carries no event of its own.
            HopIncident::DeadlineExhausted { .. } => None,
        },
        RouteIncidentKind::Downgrade { fallback, recovered } => {
            let fallback = match fallback {
                Fallback::SuccessorWalk => FallbackMode::SuccessorWalk,
                Fallback::AlternateNeighbor => FallbackMode::AlternateNeighbor,
            };
            Some(EventKind::RouteDowngrade { from, to, fallback, recovered })
        }
    };
    if matches!(kind, Some(EventKind::FaultInjected { .. })) {
        o.metrics.counter("faults_injected").inc();
    }
    if let Some(kind) = kind {
        o.emit(t, trial, kind);
    }
}

/// Bucket upper bounds for hop-count histograms (direct routes take
/// `L + 1` hops; Chord transport multiplies that by the lookup path).
fn hop_bounds() -> Vec<f64> {
    (1..=32).map(|h| h as f64).collect()
}

/// Bucket upper bounds for per-trial delivery fractions.
fn delivery_bounds() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// Geometric bucket upper bounds for phase durations in logical ticks.
fn tick_bounds() -> Vec<f64> {
    (3..=14).map(|p| (1u64 << p) as f64).collect()
}

/// Default worker count for parallel runs: the machine's available
/// parallelism, clamped to 16 (beyond that the merge mutex and memory
/// bandwidth dominate), falling back to 4 when it cannot be queried.
///
/// Shared by the CLI (`--threads` default) and [`compare_models`]
/// (which has no thread knob of its own).
///
/// [`compare_models`]: crate::compare::compare_models
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// One memoized build: an overlay (plus the Chord substrate, once a
/// Chord config has used the slot) keyed by the build-stream seeds that
/// produced it. A sweep whose points share a structural configuration
/// revisits the same `(overlay_seed, scenario)` key at every trial
/// index — the slot answers those trials with a status reset instead of
/// a rebuild.
struct BuildSlot {
    /// The overlay-build stream seed this slot's overlay was built from.
    overlay_seed: u64,
    /// The scenario the overlay was built for (memo key confirmation —
    /// seeds collide across sweep points by design, scenarios disambiguate).
    scenario: Scenario,
    overlay: Overlay,
    /// The ring-build stream seed of `chord` (meaningless while `None`).
    ring_seed: u64,
    /// Chord substrate over `overlay`'s SOS membership; kept when a
    /// Direct config borrows the slot so a later Chord config still
    /// reuses it. Always the `Transport::Chord` variant when `Some`.
    chord: Option<Transport>,
    /// `overlay.overlay_ids()`, collected once per membership.
    members: Vec<NodeId>,
    /// LRU clock value of the slot's last use.
    last_used: u64,
    /// Whether this build ever answered a lookup. Misses evict the
    /// most recently used *never-hit* slot first: a single-config run
    /// (every trial a distinct seed, no hits possible) then churns one
    /// cache-hot slot exactly like the old single-scratch engine,
    /// instead of round-robining 8 cold multi-MB slots. Slots that
    /// have produced hits are kept until no unproven slot remains.
    hit: bool,
}

/// Memo slots for a *persistent* worker scratch (the sweep pool, whose
/// workers outlive points): sweeps interleave trial batches of many
/// points on one worker, and hits happen when a later point replays a
/// trial index of an earlier structurally identical one — 8 slots
/// cover several resident trial indices per structural group.
///
/// One-shot scratches ([`TrialScratch::new`], used by `run` /
/// `run_parallel`) cap at **one** slot instead: within a single config
/// every trial has a distinct build seed, so extra slots can never
/// hit — they would only spread the working set over `BUILD_SLOTS`
/// cold multi-MB builds and pay `BUILD_SLOTS` fresh allocations where
/// the old single-scratch engine paid one (measured 2.6× slower on
/// the 10k-node Chord workload).
const BUILD_SLOTS: usize = 8;

/// Per-worker reusable trial state: memoized builds (overlay + Chord
/// substrate), the ring liveness mask, and the routing buffers. Built on
/// the first trial, reused or rebuilt in place on every subsequent one —
/// the allocations survive, the contents do not (unless the memo proves
/// they are already right).
///
/// The remaining per-trial allocations are the attacker's knowledge and
/// trace (owned by the attack outcome, which outlives the trial for
/// observability) and backtracking path frames; everything on the
/// overlay/ring/routing hot path is reused.
pub(crate) struct TrialScratch {
    slots: Vec<BuildSlot>,
    /// Slot budget: 1 for one-shot scratches, [`BUILD_SLOTS`] for
    /// persistent pool workers (see the [`BUILD_SLOTS`] doc).
    cap: usize,
    /// Monotone use counter driving LRU eviction.
    clock: u64,
    /// The transport value Direct configs route through (slots keep
    /// their Chord substrate even while a Direct config runs).
    direct: Transport,
    /// Position-indexed ring liveness for the batched route kernel,
    /// refreshed once per trial after attack damage lands.
    ring_alive: NodeBitSet,
    route: RouteScratch,
    /// Per-lane state of the batched route kernel (lane RNGs, candidate
    /// buffers, results, the per-trial Chord hop memo).
    batch: RouteBatchScratch,
}

impl TrialScratch {
    /// One-shot scratch (single `run`/`run_parallel` call): one build
    /// slot, i.e. the classic rebuild-in-place engine.
    pub(crate) fn new() -> Self {
        Self::with_cap(1)
    }

    /// Persistent scratch for pool workers that live across sweep
    /// points: the full memo, so structurally identical points reuse
    /// each other's builds.
    pub(crate) fn persistent() -> Self {
        Self::with_cap(BUILD_SLOTS)
    }

    fn with_cap(cap: usize) -> Self {
        TrialScratch {
            slots: Vec::new(),
            cap,
            clock: 0,
            direct: Transport::Direct,
            ring_alive: NodeBitSet::new(),
            route: RouteScratch::new(),
            batch: RouteBatchScratch::new(),
        }
    }

    /// Produces this trial's overlay + transport, reusing a memoized
    /// build when one matches. Returns disjoint borrows of the overlay,
    /// the transport to route through, the ring membership, the route
    /// scratch and the liveness mask.
    ///
    /// Reuse tiers (all bit-identical to a fresh build, pinned by
    /// `sos-overlay` tests):
    /// * exact hit (same overlay seed, equal scenario) — reset statuses,
    ///   skip both builds;
    /// * delta hit (same overlay seed, structure-preserving scenario
    ///   change, e.g. a different mapping degree) — keep membership,
    ///   re-roll only the neighbor tables;
    /// * miss — evict the least-recently-used slot and rebuild into its
    ///   allocations.
    ///
    /// The Chord substrate is reused whenever the membership carried
    /// over and the ring seed matches; otherwise it is rebuilt in place.
    #[allow(clippy::type_complexity)]
    fn prepare(
        &mut self,
        cfg: &SimulationConfig,
        overlay_seed: u64,
        ring_seed: u64,
    ) -> (
        &mut Overlay,
        &mut Transport,
        &[NodeId],
        &mut RouteScratch,
        &mut NodeBitSet,
        &mut RouteBatchScratch,
    ) {
        self.clock += 1;
        let reuse = build_reuse_enabled();
        // Exact key first; a structure-preserving delta only as a
        // fallback (an exact slot needs no neighbor re-roll at all).
        let hit = if reuse {
            self.slots
                .iter()
                .position(|s| s.overlay_seed == overlay_seed && s.scenario == cfg.scenario)
                .or_else(|| {
                    self.slots.iter().position(|s| {
                        s.overlay_seed == overlay_seed
                            && s.overlay.structure_matches(&cfg.scenario)
                    })
                })
        } else {
            None
        };
        let membership_carried = hit.is_some();
        let idx = match hit {
            Some(idx) => {
                let slot = &mut self.slots[idx];
                if slot.scenario == cfg.scenario {
                    // Exact: the build would reproduce this overlay bit
                    // for bit; clearing the attack damage is enough.
                    slot.overlay.reset_statuses();
                } else {
                    // Delta: membership layout survives, only the
                    // neighbor tables depend on the changed knob.
                    let mut rng = StdRng::seed_from_u64(overlay_seed);
                    slot.overlay.rebuild_neighbors_only(&cfg.scenario, &mut rng);
                    slot.scenario.clone_from(&cfg.scenario);
                }
                self.slots[idx].hit = true;
                if let Some(t) = telemetry::slot() {
                    t.add_build_reused();
                }
                idx
            }
            None => {
                let mut rng = StdRng::seed_from_u64(overlay_seed);
                let idx = if self.slots.len() < self.cap {
                    self.slots.push(BuildSlot {
                        overlay_seed,
                        scenario: cfg.scenario.clone(),
                        overlay: Overlay::build(&cfg.scenario, &mut rng),
                        ring_seed: 0,
                        chord: None,
                        members: Vec::new(),
                        last_used: 0,
                        hit: false,
                    });
                    self.slots.len() - 1
                } else {
                    // Prefer the most recently used never-hit slot (see
                    // `BuildSlot::hit`); LRU only among proven slots.
                    let idx = self
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.hit)
                        .max_by_key(|(_, s)| s.last_used)
                        .or_else(|| {
                            self.slots
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, s)| s.last_used)
                        })
                        .map(|(i, _)| i)
                        .expect("slots are non-empty");
                    let slot = &mut self.slots[idx];
                    slot.overlay_seed = overlay_seed;
                    slot.scenario.clone_from(&cfg.scenario);
                    slot.overlay.build_into(&cfg.scenario, &mut rng);
                    slot.hit = false;
                    idx
                };
                self.slots[idx].members.clear();
                idx
            }
        };
        let slot = &mut self.slots[idx];
        slot.last_used = self.clock;
        if cfg.transport == TransportKind::Chord {
            if slot.members.is_empty() {
                slot.members.extend(slot.overlay.overlay_ids());
            }
            let ring_ok =
                membership_carried && slot.ring_seed == ring_seed && slot.chord.is_some();
            if !ring_ok {
                let mut ring_rng = StdRng::seed_from_u64(ring_seed);
                match &mut slot.chord {
                    Some(Transport::Chord(ring)) => {
                        ring.build_into(&mut ring_rng, &slot.members);
                    }
                    _ => {
                        slot.chord = Some(Transport::Chord(ChordRing::build(
                            &mut ring_rng,
                            &slot.members,
                        )));
                    }
                }
                slot.ring_seed = ring_seed;
            }
        }
        let BuildSlot {
            overlay,
            chord,
            members,
            ..
        } = slot;
        let transport = match cfg.transport {
            TransportKind::Direct => &mut self.direct,
            TransportKind::Chord => chord.as_mut().expect("chord substrate just built"),
        };
        (
            overlay,
            transport,
            members,
            &mut self.route,
            &mut self.ring_alive,
            &mut self.batch,
        )
    }
}

/// Atomic work-stealing trial dispenser: workers repeatedly claim the
/// next unclaimed batch of trial indices until none remain. Replaces
/// the old fixed `trials / threads` pre-chunking, whose slowest chunk
/// bounded the wall clock; here a worker that draws cheap trials simply
/// comes back for more.
///
/// Batches are contiguous index ranges, so per-trial seeding (and thus
/// every result bit) is untouched by who executes what.
pub(crate) struct TrialQueue {
    next: AtomicU64,
    trials: u64,
    batch: u64,
}

impl TrialQueue {
    /// Sizes batches so a job yields ~64 of them regardless of worker
    /// count, clamped to `[1, 64]` trials each. The batch size must NOT
    /// depend on the thread count: batch boundaries define the
    /// floating-point reduction tree (batch partials are merged in
    /// trial order), so thread-count-independent boundaries are what
    /// make parallel results byte-identical at 1, 2, 4, ... threads.
    pub(crate) fn new(trials: u64) -> Self {
        let batch = (trials / 64).clamp(1, 64);
        TrialQueue {
            next: AtomicU64::new(0),
            trials,
            batch,
        }
    }

    /// Claims the next `[start, end)` batch, or `None` when the trial
    /// space is exhausted.
    pub(crate) fn next_batch(&self) -> Option<(u64, u64)> {
        let start = self.next.fetch_add(self.batch, Ordering::Relaxed);
        (start < self.trials).then(|| (start, (start + self.batch).min(self.trials)))
    }
}

impl Partial {
    /// Folds `(batch_start, partial)` pairs into one partial in trial
    /// order. Completion order is racy; start order is not — merging by
    /// it makes the floating-point reduction tree a pure function of
    /// the batch boundaries, which [`TrialQueue::new`] keeps
    /// thread-count-independent.
    pub(crate) fn merged_in_order(mut batches: Vec<(u64, Partial)>) -> Partial {
        batches.sort_unstable_by_key(|(start, _)| *start);
        let mut merged = Partial::default();
        for (_, partial) in &batches {
            merged.merge(partial);
        }
        merged
    }

    pub(crate) fn merge(&mut self, other: &Partial) {
        self.successes += other.successes;
        self.attempts += other.attempts;
        self.per_trial.merge(&other.per_trial);
        self.hyper_ps.merge(&other.hyper_ps);
        self.binom_ps.merge(&other.binom_ps);
        self.hops.merge(&other.hops);
        if self.failure_depths.len() < other.failure_depths.len() {
            self.failure_depths.resize(other.failure_depths.len(), 0);
        }
        for (i, &v) in other.failure_depths.iter().enumerate() {
            self.failure_depths[i] += v;
        }
    }
}

impl Simulation {
    /// Wraps a config.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation { config }
    }

    /// The configuration under test.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs all trials on the calling thread.
    pub fn run(&self) -> SimulationResult {
        telemetry::add_expected_trials(self.config.trials);
        let mut scratch = TrialScratch::new();
        let partial = self.run_trials(0, self.config.trials, &mut scratch, None);
        self.finish(partial)
    }

    /// Runs all trials on the calling thread with observability: every
    /// instrumented decision point is sent to `recorder` as a
    /// [`sos_observe::Event`], and per-trial metrics (route hops,
    /// break-in counts, phase durations, …) are aggregated into the
    /// returned [`MetricsRegistry`].
    ///
    /// Counts in the [`SimulationResult`] are identical to
    /// [`run`](Self::run): tracing only *observes* the trial streams,
    /// it never draws from them.
    pub fn run_traced(&self, recorder: &dyn Recorder) -> (SimulationResult, MetricsRegistry) {
        telemetry::add_expected_trials(self.config.trials);
        let mut obs = Observation {
            recorder,
            metrics: MetricsRegistry::new(),
        };
        let mut scratch = TrialScratch::new();
        let partial = self.run_trials(0, self.config.trials, &mut scratch, Some(&mut obs));
        (self.finish(partial), obs.metrics)
    }

    /// [`run_traced`](Self::run_traced) fanned out over `threads`
    /// workers pulling trial batches from a shared work-stealing queue.
    /// Result aggregates merge in trial order (see
    /// [`run_parallel`](Self::run_parallel)); each worker additionally
    /// aggregates into a private metrics registry, merged once at the
    /// end (counts exact, float sums associative up to merge order).
    /// Events from different trials interleave in `recorder` in
    /// worker-completion order — sort by `(trial, t)` (as the
    /// JSONL/timeline sinks do) to reconstruct per-trial order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel_traced(
        &self,
        threads: usize,
        recorder: &dyn Recorder,
    ) -> (SimulationResult, MetricsRegistry) {
        assert!(threads > 0, "need at least one thread");
        telemetry::add_expected_trials(self.config.trials);
        let queue = TrialQueue::new(self.config.trials);
        let merged = Mutex::new((Vec::new(), MetricsRegistry::new()));
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let queue = &queue;
                let merged = &merged;
                scope.spawn(move |_| {
                    let mut obs = Observation {
                        recorder,
                        metrics: MetricsRegistry::new(),
                    };
                    let mut scratch = TrialScratch::new();
                    while let Some((start, end)) = queue.next_batch() {
                        if let Some(slot) = telemetry::slot() {
                            slot.add_batch();
                        }
                        let mut partial = Partial::default();
                        for trial in start..end {
                            self.run_one_trial(trial, &mut partial, &mut scratch, Some(&mut obs));
                        }
                        merged.lock().0.push((start, partial));
                    }
                    merged.lock().1.merge(&obs.metrics);
                });
            }
        })
        .expect("simulation worker panicked");
        let (batches, metrics) = merged.into_inner();
        (self.finish(Partial::merged_in_order(batches)), metrics)
    }

    /// Runs trials fanned out over `threads` worker threads pulling
    /// batches from a shared work-stealing queue (no worker idles while
    /// trials remain). Every trial is seeded independently of which
    /// worker runs it, and batch partials are merged in trial order
    /// over thread-count-independent batch boundaries — so the result
    /// (floats included) is byte-identical at every thread count.
    /// Aggregates may still differ from [`run`](Self::run) in the last
    /// few ulps: the serial path accumulates one running sum while this
    /// path reduces over batch partials.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(&self, threads: usize) -> SimulationResult {
        assert!(threads > 0, "need at least one thread");
        telemetry::add_expected_trials(self.config.trials);
        let queue = TrialQueue::new(self.config.trials);
        let merged = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let queue = &queue;
                let merged = &merged;
                scope.spawn(move |_| {
                    let mut scratch = TrialScratch::new();
                    while let Some((start, end)) = queue.next_batch() {
                        if let Some(slot) = telemetry::slot() {
                            slot.add_batch();
                        }
                        let mut partial = Partial::default();
                        for trial in start..end {
                            self.run_one_trial(trial, &mut partial, &mut scratch, None);
                        }
                        merged.lock().push((start, partial));
                    }
                });
            }
        })
        .expect("simulation worker panicked");
        self.finish(Partial::merged_in_order(merged.into_inner()))
    }

    /// Runs batches of trials until the 95% Wilson interval on the
    /// empirical `P_S` is narrower than `half_width`, or `max_trials`
    /// have been spent. Returns the result plus the number of trials
    /// actually used.
    ///
    /// Each batch is fanned out over the shared persistent worker pool
    /// (`crate::pool`), so adaptive-precision runs parallelize like
    /// [`run_parallel`](Self::run_parallel) instead of spending all
    /// batches on one thread.
    ///
    /// Deterministic: trial `i` is always seeded identically, so the
    /// precision stop only decides *how many* trials run, never their
    /// content — and the stopping rule itself reads only the integer
    /// success/attempt counts, which are exact at any thread count, so
    /// the decision is identical to a single-threaded run.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is not in `(0, 0.5)` or `max_trials == 0`.
    pub fn run_until_precision(
        &self,
        half_width: f64,
        max_trials: u64,
    ) -> (SimulationResult, u64) {
        assert!(
            half_width > 0.0 && half_width < 0.5,
            "half width must be in (0, 0.5), got {half_width}"
        );
        assert!(max_trials > 0, "need at least one trial");
        let batch = self.config.trials.max(1);
        let sim = std::sync::Arc::new(self.clone());
        // Hold the pool for the whole adaptive loop: batches are
        // data-dependent (each stopping decision needs the previous
        // counts), so interleaving another caller's jobs between
        // batches would only add latency here.
        let mut pool = crate::pool::global_pool()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut partial = Partial::default();
        let mut done = 0u64;
        loop {
            let next = (done + batch).min(max_trials);
            let (mut batch_partials, _) = pool.run(vec![crate::pool::RangeJob {
                sim: sim.clone(),
                start: done,
                end: next,
                point: false,
            }]);
            partial.merge(&batch_partials.remove(0));
            done = next;
            let ci = sos_math::stats::proportion_ci(
                partial.successes,
                partial.attempts,
                0.95,
            );
            if ci.half_width() <= half_width || done >= max_trials {
                return (self.finish(partial), done);
            }
        }
    }

    fn run_trials(
        &self,
        start: u64,
        end: u64,
        scratch: &mut TrialScratch,
        mut obs: Option<&mut Observation<'_>>,
    ) -> Partial {
        let mut partial = Partial::default();
        for trial in start..end {
            self.run_one_trial(trial, &mut partial, scratch, obs.as_deref_mut());
        }
        partial
    }

    pub(crate) fn run_one_trial(
        &self,
        trial: u64,
        partial: &mut Partial,
        scratch: &mut TrialScratch,
        mut obs: Option<&mut Observation<'_>>,
    ) {
        let cfg = &self.config;
        // Live telemetry wall-clock attribution. The timer is inert
        // when telemetry is off, and in either state it only *reads*
        // the clock — it never touches the trial RNG streams, so
        // results are bit-identical with telemetry on or off.
        let mut timer = PhaseTimer::start();
        // Independent decorrelated streams per trial for overlay
        // construction, ring construction, attack+routing and trace
        // sampling — so a Direct run and a Chord run with the same seed
        // see the *same* overlay and the same attack (paired
        // comparison), and a memo hit that skips a build stream cannot
        // perturb any other stream's draws.
        let overlay_seed = trial_stream_seed(cfg.seed, stream::OVERLAY_BUILD, trial);
        let ring_seed = trial_stream_seed(cfg.seed, stream::RING_BUILD, trial);
        let attack_seed = trial_stream_seed(cfg.seed, stream::ATTACK, trial);
        let mut rng = StdRng::seed_from_u64(attack_seed);
        // The fault plane draws from its own keyed PRF (never the trial
        // streams above), so enabling it cannot shift the overlay,
        // attack, or routing randomness.
        let plan = (!cfg.faults.is_none()).then(|| FaultPlan::new(&cfg.faults, trial));
        // First trial on this worker builds the scratch state; later
        // trials reuse a memoized build when the seeds/scenario match
        // and rebuild in place otherwise (both bit-identical to a fresh
        // build — memo hits skip work, never change it).
        let (overlay, transport, members, route_scratch, ring_alive, route_batch) =
            scratch.prepare(cfg, overlay_seed, ring_seed);
        timer.lap(PhaseKind::Build);

        // Logical tick within the trial; only advanced in traced runs.
        let mut t = 0u64;
        if let Some(o) = obs.as_deref_mut() {
            o.emit(&mut t, trial, EventKind::TrialStart { seed: attack_seed });
            o.metrics.counter("trials").inc();
            // Sample the transport substrate: a few Chord lookups from
            // the dedicated trace stream (never the attack/routing
            // stream, so the trial outcome matches an untraced run
            // exactly). `members` was already collected for ring
            // construction.
            if let Transport::Chord(ring) = &*transport {
                let mut trace_rng =
                    StdRng::seed_from_u64(trial_stream_seed(cfg.seed, stream::TRACE, trial));
                let bounds = hop_bounds();
                for _ in 0..TRACED_LOOKUP_SAMPLES {
                    let from = members[trace_rng.gen_range(0..members.len())];
                    let key = trace_rng.gen::<u64>();
                    let outcome = ring.lookup(from, key);
                    o.metrics
                        .histogram("lookup_hops", &bounds)
                        .record(outcome.hops() as f64);
                    o.emit(
                        &mut t,
                        trial,
                        sos_overlay::observe::lookup_event_kind(&outcome),
                    );
                }
            }
        }

        let outcome = match (cfg.attack, cfg.monitoring_tap) {
            (AttackConfig::OneBurst { budget }, _) => {
                OneBurstAttacker::new(budget).execute(overlay, &mut rng)
            }
            (AttackConfig::Successive { budget, params }, None) => {
                SuccessiveAttacker::new(budget, params).execute(overlay, &mut rng)
            }
            (AttackConfig::Successive { budget, params }, Some(tap)) => {
                sos_attack::MonitoringAttacker::new(budget, params, tap)
                    .execute(overlay, &mut rng)
                    .outcome
            }
        };
        // Mirror attack damage into any protocol-level routing state the
        // transport keeps (no-op for Direct/Chord, which read the overlay
        // directly). Skipping this on a stateful transport is the classic
        // stale-ring footgun — `sync_damage` owns the invariant.
        transport.sync_damage(overlay);
        if let Some(o) = obs.as_deref_mut() {
            let attack_start = t;
            if o.recorder.enabled() {
                sos_attack::emit_attack_events(
                    &outcome.trace,
                    overlay,
                    trial,
                    &mut t,
                    o.recorder,
                );
            } else {
                // Keep the tick clock honest without replaying: the
                // bridge emits one tick per trace event plus the 3-4
                // phase markers; approximate with the event count.
                t += outcome.trace.len() as u64;
            }
            let attack_ticks = t - attack_start;
            o.metrics
                .counter("break_in_attempts")
                .add(outcome.attempted.len() as u64);
            o.metrics
                .counter("break_in_successes")
                .add(outcome.broken.len() as u64);
            o.metrics
                .counter("disclosures")
                .add(outcome.disclosed.len() as u64);
            o.metrics
                .counter("congestion_slots")
                .add(outcome.congested.len() as u64);
            o.metrics
                .counter("attack_rounds")
                .add(outcome.rounds.len() as u64);
            o.metrics
                .histogram("attack_phase_ticks", &tick_bounds())
                .record(attack_ticks as f64);
        }

        // Price the realized compromise state with both analytical
        // evaluators (for the evaluator ablation).
        let state = overlay.compromise_state();
        let topo = cfg.scenario.topology();
        partial.hyper_ps.push(
            PathEvaluator::Hypergeometric
                .success_probability(topo, &state)
                .value(),
        );
        partial.binom_ps.push(
            PathEvaluator::Binomial
                .success_probability(topo, &state)
                .value(),
        );

        let depth_slots = cfg.scenario.topology().layer_count() + 1;
        if partial.failure_depths.len() < depth_slots {
            partial.failure_depths.resize(depth_slots, 0);
        }
        // The attack span was attributed by the attacker's own timer
        // (break-in/congestion); the bridge/evaluator glue in between
        // belongs to no phase — re-arm without attributing.
        timer.reset();
        let routing_start = t;
        if let Some(o) = obs.as_deref_mut() {
            o.emit(&mut t, trial, EventKind::PhaseStart {
                phase: Phase::Routing,
            });
        }
        // Batched SoA liveness: resolve the ring's per-position alive
        // bits once, after attack damage and the fault plan are final;
        // every substrate lookup on every route of this trial then
        // probes the shared u64 words instead of chasing per-node
        // status. Purely a precompute — results are bit-identical to
        // the unmasked path (pinned by transport/routing tests).
        let alive = transport
            .refresh_alive_positions(overlay, plan.as_ref(), ring_alive)
            .then_some(&*ring_alive);
        // Routes are evaluated by the batched SoA kernel in chunks of
        // `route_batch_width()` lanes. Every route draws from its own
        // `route_lane_seed` sub-stream (never the attack rng above), so
        // chunking, lane order and batch width cannot perturb results —
        // width 1 runs the scalar `route_message_hint` oracle per lane
        // and is byte-identical (pinned by tests). Events and partial
        // accumulation happen per chunk, in route order, so traced runs
        // see exactly the per-route event sequence of the scalar loop.
        let width = route_batch_width();
        let route_master = trial_stream_seed(cfg.seed, stream::ROUTE, trial);
        route_batch.begin_trial();
        let mut delivered = 0u64;
        let mut first = 0u64;
        while first < cfg.routes_per_trial {
            let count = (cfg.routes_per_trial - first).min(width as u64) as usize;
            route_batch.evaluate(
                overlay,
                transport,
                cfg.policy,
                plan.as_ref(),
                &cfg.retry,
                route_master,
                first,
                count,
                alive,
                route_scratch,
                width > 1,
            );
            for lane in 0..count {
                let route = first + lane as u64;
                let result = route_batch.result(lane);
                if let Some(o) = obs.as_deref_mut() {
                    o.emit(&mut t, trial, EventKind::RouteAttempt { route });
                    for incident in &result.incidents {
                        emit_incident(o, &mut t, trial, incident);
                    }
                    if result.retries > 0 {
                        o.metrics.counter("hop_retries").add(result.retries);
                    }
                    if result.downgrades > 0 {
                        o.metrics.counter("route_downgrades").add(result.downgrades);
                    }
                    if result.delivered {
                        o.emit(&mut t, trial, EventKind::RouteDelivered {
                            route,
                            hops: result.underlay_hops as u32,
                        });
                        o.metrics
                            .histogram("route_hops", &hop_bounds())
                            .record(result.underlay_hops as f64);
                        o.metrics.counter("routes_delivered").inc();
                    } else {
                        o.emit(&mut t, trial, EventKind::RouteFailed {
                            route,
                            deepest_layer: result.deepest_layer as u32,
                        });
                        o.metrics.counter("routes_failed").inc();
                    }
                    o.metrics.counter("routes_attempted").inc();
                }
                if result.delivered {
                    delivered += 1;
                    partial.hops.push(result.underlay_hops as f64);
                } else {
                    partial.failure_depths[result.deepest_layer.min(depth_slots - 1)] += 1;
                }
            }
            first += count as u64;
        }
        timer.lap(PhaseKind::Routing);
        if let Some(slot) = telemetry::slot() {
            slot.add_trial();
            slot.add_routes(cfg.routes_per_trial);
        }
        partial.successes += delivered;
        partial.attempts += cfg.routes_per_trial;
        partial
            .per_trial
            .push(delivered as f64 / cfg.routes_per_trial as f64);
        if let Some(o) = obs {
            o.emit(&mut t, trial, EventKind::PhaseEnd {
                phase: Phase::Routing,
            });
            o.emit(&mut t, trial, EventKind::TrialEnd {
                delivered,
                attempted: cfg.routes_per_trial,
            });
            o.metrics
                .histogram("per_trial_delivery", &delivery_bounds())
                .record(delivered as f64 / cfg.routes_per_trial as f64);
            o.metrics
                .histogram("routing_phase_ticks", &tick_bounds())
                .record((t - routing_start) as f64);
        }
    }

    pub(crate) fn finish(&self, partial: Partial) -> SimulationResult {
        SimulationResult {
            successes: partial.successes,
            attempts: partial.attempts,
            per_trial: partial.per_trial.summary(),
            realized_ps_hypergeometric: partial.hyper_ps.mean(),
            realized_ps_binomial: partial.binom_ps.mean(),
            mean_underlay_hops: partial.hops.mean(),
            failure_depths: partial.failure_depths,
        }
    }
}

/// Aggregated output of a Monte Carlo estimate.
///
/// Serializable so the sweep executor ([`crate::sweep`]) can persist
/// results in its content-addressed cache; all floats survive a JSON
/// round trip exactly (shortest-round-trip printing).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimulationResult {
    /// Delivered messages over all trials.
    pub successes: u64,
    /// Total messages routed.
    pub attempts: u64,
    /// Distribution of per-trial delivery fractions.
    pub per_trial: SummaryStats,
    /// Mean of equation (1) with the hypergeometric evaluator applied to
    /// each trial's realized compromise counts.
    pub realized_ps_hypergeometric: f64,
    /// Same with the binomial evaluator.
    pub realized_ps_binomial: f64,
    /// Mean underlay hops of delivered messages (4 = L+1 layers under
    /// direct transport with `L = 3`; larger under Chord).
    pub mean_underlay_hops: f64,
    /// Failure attribution: `failure_depths[d]` counts routes that died
    /// having reached 1-based layer `d` at the deepest (`0` = the client
    /// found no usable entry point). The bottleneck layer is the argmax.
    pub failure_depths: Vec<u64>,
}

impl SimulationResult {
    /// Empirical `P_S`: delivered fraction over all routed messages.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// The layer where failures concentrate (None if every route was
    /// delivered): the failure-depth histogram's argmax. A message dying
    /// "at depth d" found no usable neighbor while standing at layer d.
    pub fn bottleneck_layer(&self) -> Option<usize> {
        if self.successes == self.attempts {
            return None;
        }
        self.failure_depths
            .iter()
            .enumerate()
            .max_by_key(|&(_, &count)| count)
            .map(|(layer, _)| layer)
    }

    /// Wilson confidence interval on the success rate.
    ///
    /// Note: routes within one trial share an overlay, so this interval
    /// treats the per-route outcomes as exchangeable rather than fully
    /// independent — use [`per_trial`](Self::per_trial) for the
    /// between-trial spread.
    ///
    /// # Panics
    ///
    /// Panics if no routes were attempted or `level` is not in `(0, 1)`.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        proportion_ci(self.successes, self.attempts, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{AttackBudget, MappingDegree, SuccessiveParams, SystemParams};

    fn scenario(n: u64, sos: u64, layers: usize, mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::new(n, sos, 0.5).unwrap())
            .layers(layers)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    fn quick(attack: AttackConfig, mapping: MappingDegree) -> SimulationConfig {
        SimulationConfig::new(scenario(1_000, 60, 3, mapping), attack)
            .trials(40)
            .routes_per_trial(50)
            .seed(11)
    }

    #[test]
    fn no_attack_gives_perfect_delivery() {
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 0),
            },
            MappingDegree::OneTo(2),
        );
        let result = Simulation::new(cfg).run();
        assert_eq!(result.success_rate(), 1.0);
        assert_eq!(result.realized_ps_binomial, 1.0);
        assert_eq!(result.realized_ps_hypergeometric, 1.0);
        assert_eq!(result.mean_underlay_hops, 4.0);
    }

    #[test]
    fn congestion_reduces_delivery() {
        let light = Simulation::new(quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 100),
            },
            MappingDegree::ONE_TO_ONE,
        ))
        .run();
        let heavy = Simulation::new(quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 600),
            },
            MappingDegree::ONE_TO_ONE,
        ))
        .run();
        assert!(light.success_rate() > heavy.success_rate());
        assert!(heavy.success_rate() < 0.6);
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = quick(
            AttackConfig::Successive {
                budget: AttackBudget::new(50, 200),
                params: SuccessiveParams::paper_default(),
            },
            MappingDegree::OneTo(2),
        );
        let seq = Simulation::new(cfg.clone()).run();
        let par = Simulation::new(cfg).run_parallel(4);
        // Counts are exact; floating aggregates merge in a different
        // order so allow ulp-level slack.
        assert_eq!(seq.successes, par.successes);
        assert_eq!(seq.attempts, par.attempts);
        assert_eq!(seq.per_trial.count, par.per_trial.count);
        assert!((seq.per_trial.mean - par.per_trial.mean).abs() < 1e-12);
        assert!((seq.realized_ps_binomial - par.realized_ps_binomial).abs() < 1e-12);
        assert!(
            (seq.realized_ps_hypergeometric - par.realized_ps_hypergeometric).abs()
                < 1e-12
        );
    }

    #[test]
    fn simulation_matches_analytic_one_to_one_congestion() {
        // Pure random congestion with one-to-one mapping: the analytical
        // model is near-exact, so the simulation must agree closely.
        let scenario = scenario(1_000, 60, 3, MappingDegree::ONE_TO_ONE);
        let budget = AttackBudget::new(0, 200);
        let cfg = SimulationConfig::new(
            scenario.clone(),
            AttackConfig::OneBurst { budget },
        )
        .trials(150)
        .routes_per_trial(100)
        .seed(5);
        let sim = Simulation::new(cfg).run_parallel(4);
        let analytic = sos_analysis::OneBurstAnalysis::new(&scenario, budget)
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
        let ci = sim.confidence_interval(0.999);
        assert!(
            (sim.success_rate() - analytic).abs() < 0.05,
            "sim {} vs analytic {analytic} (ci {ci:?})",
            sim.success_rate()
        );
    }

    #[test]
    fn chord_transport_is_at_most_direct() {
        let attack = AttackConfig::OneBurst {
            budget: AttackBudget::new(0, 300),
        };
        let direct = Simulation::new(
            quick(attack, MappingDegree::OneTo(2)).transport(TransportKind::Direct),
        )
        .run();
        let chord = Simulation::new(
            quick(attack, MappingDegree::OneTo(2)).transport(TransportKind::Chord),
        )
        .run();
        // Chord adds failure modes (intermediate hops) and path length.
        assert!(chord.success_rate() <= direct.success_rate() + 0.02);
        assert!(chord.mean_underlay_hops > direct.mean_underlay_hops);
    }

    #[test]
    fn confidence_interval_brackets_rate() {
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 300),
            },
            MappingDegree::OneTo(2),
        );
        let result = Simulation::new(cfg).run();
        let ci = result.confidence_interval(0.95);
        assert!(ci.contains(result.success_rate()));
    }

    #[test]
    fn failure_attribution_points_at_the_dead_layer() {
        // Kill layer 2 outright by congesting enough of the overlay that
        // one-to-one routing dies early; more precisely, compare where
        // failures land under a pure congestion attack.
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 500),
            },
            MappingDegree::ONE_TO_ONE,
        );
        let result = Simulation::new(cfg).run();
        assert!(result.successes < result.attempts);
        let total_failures: u64 = result.failure_depths.iter().sum();
        assert_eq!(total_failures, result.attempts - result.successes);
        let bottleneck = result.bottleneck_layer().unwrap();
        // Uniform 50% damage with one-to-one: most deaths happen early
        // (at the client or layer 1-2).
        assert!(bottleneck <= 2, "bottleneck {bottleneck}");
        // A clean run attributes nothing.
        let clean = Simulation::new(quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 0),
            },
            MappingDegree::ONE_TO_ONE,
        ))
        .run();
        assert_eq!(clean.bottleneck_layer(), None);
        assert!(clean.failure_depths.iter().all(|&c| c == 0));
    }

    #[test]
    fn precision_runner_reaches_target_or_cap() {
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 300),
            },
            MappingDegree::OneTo(2),
        )
        .trials(20); // batch size
        let sim = Simulation::new(cfg);
        let (result, used) = sim.run_until_precision(0.03, 400);
        let ci = result.confidence_interval(0.95);
        assert!(
            ci.half_width() <= 0.03 || used == 400,
            "half width {} with {used} trials",
            ci.half_width()
        );
        assert!(used % 20 == 0, "trials spent in whole batches: {used}");
        // A looser target uses no more trials than a tighter one.
        let (_, loose) = sim.run_until_precision(0.08, 400);
        assert!(loose <= used);
        // Determinism: same precision, same result.
        let (again, used_again) = sim.run_until_precision(0.03, 400);
        assert_eq!(used, used_again);
        assert_eq!(result.successes, again.successes);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let cfg = quick(
            AttackConfig::Successive {
                budget: AttackBudget::new(50, 200),
                params: SuccessiveParams::paper_default(),
            },
            MappingDegree::OneTo(2),
        );
        let plain = Simulation::new(cfg.clone()).run();
        let (traced, metrics) =
            Simulation::new(cfg.clone()).run_traced(&sos_observe::NullRecorder);
        // Tracing only observes the trial streams; the result is
        // bit-identical, not merely statistically equal.
        assert_eq!(plain, traced);
        assert_eq!(
            metrics.counter_value("routes_attempted"),
            Some(plain.attempts)
        );
        assert_eq!(
            metrics.counter_value("routes_delivered"),
            Some(plain.successes)
        );
        assert_eq!(metrics.counter_value("trials"), Some(40));
        let hops = metrics.get_histogram("route_hops").unwrap();
        assert_eq!(hops.count(), plain.successes);

        // Parallel traced: counts exact, registries merge to the same
        // totals regardless of worker split.
        let (par, par_metrics) =
            Simulation::new(cfg).run_parallel_traced(4, &sos_observe::NullRecorder);
        assert_eq!(par.successes, plain.successes);
        assert_eq!(par.attempts, plain.attempts);
        assert_eq!(
            par_metrics.counter_value("break_in_attempts"),
            metrics.counter_value("break_in_attempts")
        );
        assert_eq!(
            par_metrics.get_histogram("route_hops").unwrap().count(),
            hops.count()
        );
    }

    #[test]
    fn traced_chord_run_matches_untraced() {
        // The traced path samples extra Chord lookups from the ring
        // stream; that stream is otherwise dead after ring construction,
        // so the result must still be bit-identical.
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 300),
            },
            MappingDegree::OneTo(2),
        )
        .transport(TransportKind::Chord);
        let plain = Simulation::new(cfg.clone()).run();
        let (traced, metrics) =
            Simulation::new(cfg).run_traced(&sos_observe::NullRecorder);
        assert_eq!(plain, traced);
        // 8 sampled lookups per trial × 40 trials.
        let lookups = metrics.get_histogram("lookup_hops").unwrap();
        assert_eq!(lookups.count(), 8 * 40);
        assert!(lookups.mean().unwrap() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "half width must be in")]
    fn precision_runner_rejects_bad_width() {
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 0),
            },
            MappingDegree::OneTo(2),
        );
        let _ = Simulation::new(cfg).run_until_precision(0.7, 10);
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_baseline() {
        // Acceptance gate for the fault plane: `FaultConfig::none()`
        // must not merely be statistically equivalent — the exact
        // result (counts, float aggregates, failure attribution) is
        // unchanged, because no fault plan is ever built.
        for transport in [TransportKind::Direct, TransportKind::Chord] {
            let base = quick(
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(60, 250),
                },
                MappingDegree::OneTo(2),
            )
            .transport(transport);
            let plain = Simulation::new(base.clone()).run();
            let gated = Simulation::new(
                base.faults(sos_faults::FaultConfig::none())
                    .retry(sos_faults::RetryPolicy::new(8, 2, 512)),
            )
            .run();
            assert_eq!(plain, gated, "zero-fault run diverged ({transport:?})");
        }
    }

    #[test]
    fn retries_strictly_improve_ps_under_loss() {
        // Loss is transient, so at equal seeds a retrying run dominates
        // a bare run strictly (acceptance criterion).
        let faults = sos_faults::FaultConfig::none().loss(0.15).seed(3);
        let base = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 200),
            },
            MappingDegree::OneTo(2),
        );
        let bare = Simulation::new(base.clone().faults(faults)).run();
        let retried = Simulation::new(
            base.clone()
                .faults(faults)
                .retry(sos_faults::RetryPolicy::new(4, 1, 64)),
        )
        .run();
        let clean = Simulation::new(base).run();
        assert!(
            bare.success_rate() < clean.success_rate(),
            "loss faults must cost deliveries: {} vs clean {}",
            bare.success_rate(),
            clean.success_rate()
        );
        assert!(
            retried.success_rate() > bare.success_rate(),
            "retries must strictly improve P_S: {} vs {}",
            retried.success_rate(),
            bare.success_rate()
        );
        // Retries recover only transient faults, never compromises: the
        // retried run cannot beat the fault-free run.
        assert!(retried.success_rate() <= clean.success_rate());
    }

    #[test]
    fn faulty_traced_run_matches_untraced() {
        // Satellite: tracing must stay a pure observer with the fault
        // plane active — the incident events draw nothing from the
        // trial streams.
        let cfg = quick(
            AttackConfig::Successive {
                budget: AttackBudget::new(50, 200),
                params: SuccessiveParams::paper_default(),
            },
            MappingDegree::OneTo(2),
        )
        .faults(
            sos_faults::FaultConfig::none()
                .loss(0.2)
                .delay(0.1, 4)
                .crash(0.02)
                .seed(17),
        )
        .retry(sos_faults::RetryPolicy::new(3, 1, 128));
        let plain = Simulation::new(cfg.clone()).run();
        let (traced, metrics) =
            Simulation::new(cfg.clone()).run_traced(&sos_observe::NullRecorder);
        assert_eq!(plain, traced);
        assert!(
            metrics.counter_value("faults_injected").unwrap_or(0) > 0,
            "20% loss over 2000 routes must inject faults"
        );
        assert!(metrics.counter_value("hop_retries").unwrap_or(0) > 0);

        let (par, par_metrics) =
            Simulation::new(cfg).run_parallel_traced(4, &sos_observe::NullRecorder);
        // Counts exact; float aggregates merge in worker order, so
        // allow ulp-level slack (same contract as the untraced runner).
        assert_eq!(par.successes, plain.successes);
        assert_eq!(par.attempts, plain.attempts);
        assert_eq!(par.failure_depths, plain.failure_depths);
        assert!((par.per_trial.mean - plain.per_trial.mean).abs() < 1e-12);
        assert_eq!(
            par_metrics.counter_value("faults_injected"),
            metrics.counter_value("faults_injected")
        );
        assert_eq!(
            par_metrics.counter_value("hop_retries"),
            metrics.counter_value("hop_retries")
        );
        assert_eq!(
            par_metrics.counter_value("route_downgrades"),
            metrics.counter_value("route_downgrades")
        );
    }

    #[test]
    fn fault_events_surface_in_the_recorder() {
        // Acceptance: every retry/downgrade is visible as a structured
        // event, not just a counter.
        let cfg = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 200),
            },
            MappingDegree::OneTo(2),
        )
        .trials(5)
        .faults(sos_faults::FaultConfig::none().loss(0.3).seed(29))
        .retry(sos_faults::RetryPolicy::new(3, 1, 64));
        let recorder = sos_observe::MemoryRecorder::new();
        let (_, metrics) = Simulation::new(cfg).run_traced(&recorder);
        let events = recorder.take_events();
        let faults = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
            .count() as u64;
        let retries = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HopRetry { .. }))
            .count() as u64;
        assert_eq!(Some(faults), metrics.counter_value("faults_injected"));
        assert_eq!(Some(retries), metrics.counter_value("hop_retries"));
        assert!(faults > 0 && retries > 0, "{faults} faults, {retries} retries");
    }

    #[test]
    fn work_stealing_is_bit_identical_at_any_thread_count() {
        // The scheduler decides *who* runs a trial, never *what* the
        // trial is: counts must match the serial run exactly at every
        // thread count, including more threads than batches.
        for transport in [TransportKind::Direct, TransportKind::Chord] {
            let cfg = quick(
                AttackConfig::Successive {
                    budget: AttackBudget::new(50, 200),
                    params: SuccessiveParams::paper_default(),
                },
                MappingDegree::OneTo(2),
            )
            .transport(transport);
            let serial = Simulation::new(cfg.clone()).run();
            let mut reference: Option<String> = None;
            for threads in [1, 2, 4, 8] {
                let par = Simulation::new(cfg.clone()).run_parallel(threads);
                assert_eq!(serial.successes, par.successes, "{threads} threads");
                assert_eq!(serial.attempts, par.attempts, "{threads} threads");
                assert_eq!(serial.failure_depths, par.failure_depths, "{threads} threads");
                assert_eq!(serial.per_trial.count, par.per_trial.count);
                assert!((serial.per_trial.mean - par.per_trial.mean).abs() < 1e-12);
                // Across thread counts the parallel path is exact: the
                // merge tree is a pure function of the batch layout.
                let json = serde_json::to_string(&par).unwrap();
                match &reference {
                    None => reference = Some(json),
                    Some(expected) => {
                        assert_eq!(expected, &json, "{threads} threads not byte-identical");
                    }
                }
            }
        }
    }

    #[test]
    fn trial_queue_partitions_trials_evenly() {
        // Deterministic model of the work-stealing queue: round-robin
        // workers drain it; every trial is handed out exactly once and
        // no two workers' totals differ by more than one batch.
        for (trials, threads) in [(1u64, 4usize), (7, 4), (40, 4), (1_000, 8), (1_000, 3)] {
            let queue = TrialQueue::new(trials);
            let mut counts = vec![0u64; threads];
            let mut seen = vec![false; trials as usize];
            let mut worker = 0;
            while let Some((start, end)) = queue.next_batch() {
                assert!(start < end && end <= trials);
                for t in start..end {
                    assert!(!seen[t as usize], "trial {t} handed out twice");
                    seen[t as usize] = true;
                }
                counts[worker] += end - start;
                worker = (worker + 1) % threads;
            }
            assert!(seen.iter().all(|&s| s), "every trial handed out");
            let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
            assert!(
                spread <= queue.batch,
                "worker totals {counts:?} spread {spread} > batch {}",
                queue.batch
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = quick(
            AttackConfig::OneBurst {
                budget: AttackBudget::new(0, 0),
            },
            MappingDegree::OneTo(2),
        )
        .trials(0);
    }
}
