//! The engine's per-worker build memo must be observationally pure:
//! a sweep's serialized results are byte-identical with reuse on and
//! off, at every thread count. The memo only ever skips the dedicated
//! build RNG sub-streams, so downstream attack/routing draws cannot
//! shift.

use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos_sim::engine::{SimulationConfig, TransportKind};
use sos_sim::{set_build_reuse, SweepExecutor};

fn scenario(mapping_k: u64) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(400, 48, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(mapping_k))
        .filters(6)
        .build()
        .unwrap()
}

/// A grid that exercises both memo tiers: attack-only transitions over
/// a shared structure (exact hits) and a mapping-degree change over the
/// same membership (delta rebuilds), on both transports.
fn grid() -> Vec<SimulationConfig> {
    let mut configs = Vec::new();
    for transport in [TransportKind::Direct, TransportKind::Chord] {
        for nc in [40u64, 80, 120] {
            configs.push(
                SimulationConfig::new(
                    scenario(2),
                    AttackConfig::OneBurst { budget: AttackBudget::new(10, nc) },
                )
                .trials(6)
                .routes_per_trial(12)
                .seed(7)
                .transport(transport),
            );
        }
        configs.push(
            SimulationConfig::new(
                scenario(4),
                AttackConfig::OneBurst { budget: AttackBudget::new(10, 80) },
            )
            .trials(6)
            .routes_per_trial(12)
            .seed(7)
            .transport(transport),
        );
    }
    configs
}

#[test]
fn sweep_results_identical_with_reuse_on_and_off_at_any_thread_count() {
    let configs = grid();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        set_build_reuse(true);
        let on = SweepExecutor::with_threads(threads).run(&configs);
        set_build_reuse(false);
        let off = SweepExecutor::with_threads(threads).run(&configs);
        set_build_reuse(true);
        let on_json = serde_json::to_string(&on).unwrap();
        let off_json = serde_json::to_string(&off).unwrap();
        assert_eq!(
            on_json, off_json,
            "build memo changed sweep results at {threads} threads"
        );
        // And the whole family agrees across thread counts.
        match &reference {
            None => reference = Some(on_json),
            Some(expected) => assert_eq!(
                expected, &on_json,
                "sweep results differ between thread counts ({threads})"
            ),
        }
    }
}
