//! Integration tests for the traced simulation path: event ordering,
//! determinism under a fixed seed, and sink round-trips.

use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams};
use sos_observe::{Event, EventKind, MemoryRecorder, Phase};
use sos_sim::engine::{Simulation, SimulationConfig};

fn traced_config() -> SimulationConfig {
    let scenario = Scenario::builder()
        .system(SystemParams::new(1_000, 60, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap();
    SimulationConfig::new(
        scenario,
        AttackConfig::Successive {
            budget: AttackBudget::new(60, 250),
            params: SuccessiveParams::new(3, 0.2).unwrap(),
        },
    )
    .trials(3)
    .routes_per_trial(40)
    .seed(42)
}

fn run_traced_events() -> Vec<Event> {
    let recorder = MemoryRecorder::new();
    let _ = Simulation::new(traced_config()).run_traced(&recorder);
    recorder.take_events()
}

/// Tick position of the first event in `trial` matching `pred`.
fn first_tick(events: &[Event], trial: u64, pred: impl Fn(&EventKind) -> bool) -> Option<u64> {
    events
        .iter()
        .find(|e| e.trial == trial && pred(&e.kind))
        .map(|e| e.t)
}

#[test]
fn phase_events_are_ordered_within_every_trial() {
    let events = run_traced_events();
    assert!(!events.is_empty());
    for trial in 0..3u64 {
        let of_trial: Vec<&Event> = events.iter().filter(|e| e.trial == trial).collect();
        assert!(!of_trial.is_empty(), "trial {trial} produced no events");

        // The trial is bracketed by TrialStart/TrialEnd.
        assert!(matches!(of_trial[0].kind, EventKind::TrialStart { .. }));
        assert!(matches!(
            of_trial.last().unwrap().kind,
            EventKind::TrialEnd { .. }
        ));

        // Ticks are strictly monotone within the trial.
        for pair in of_trial.windows(2) {
            assert!(pair[0].t < pair[1].t, "non-monotone ticks in trial {trial}");
        }

        // Lifecycle order: break-in opens before congestion opens
        // before routing opens; every break-in attempt precedes every
        // congestion onset (the paper's two attack phases).
        let break_in_start = first_tick(&events, trial, |k| {
            *k == EventKind::PhaseStart { phase: Phase::BreakIn }
        })
        .expect("break-in span");
        let congestion_start = first_tick(&events, trial, |k| {
            *k == EventKind::PhaseStart { phase: Phase::Congestion }
        })
        .expect("congestion span");
        let routing_start = first_tick(&events, trial, |k| {
            *k == EventKind::PhaseStart { phase: Phase::Routing }
        })
        .expect("routing span");
        assert!(break_in_start < congestion_start);
        assert!(congestion_start < routing_start);

        let last_break_in = of_trial
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BreakInAttempt { .. }))
            .map(|e| e.t)
            .max()
            .expect("N_T = 60 must attempt break-ins");
        let first_congestion = of_trial
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CongestionOnset { .. }))
            .map(|e| e.t)
            .min()
            .expect("N_C = 250 must congest something");
        assert!(
            last_break_in < first_congestion,
            "break-in after congestion onset in trial {trial}"
        );

        // Algorithm 1 decision points are visible and start at round 1.
        assert!(first_tick(&events, trial, |k| matches!(
            k,
            EventKind::AttackRound { round: 1, .. }
        ))
        .is_some());

        // Route events come in attempt → outcome pairs.
        let attempts = of_trial
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RouteAttempt { .. }))
            .count();
        let outcomes = of_trial
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::RouteDelivered { .. } | EventKind::RouteFailed { .. }
                )
            })
            .count();
        assert_eq!(attempts, 40);
        assert_eq!(outcomes, 40);
    }
}

#[test]
fn traced_events_are_deterministic_under_fixed_seed() {
    let first = run_traced_events();
    let second = run_traced_events();
    assert_eq!(first, second, "same seed must replay the same trace");
}

#[test]
fn parallel_trace_is_a_permutation_of_sequential() {
    let sequential = run_traced_events();
    let recorder = MemoryRecorder::new();
    let _ = Simulation::new(traced_config()).run_parallel_traced(3, &recorder);
    let mut parallel = recorder.take_events();
    parallel.sort_by_key(|e| (e.trial, e.t));
    // Sequential emission is already (trial, t)-sorted, so sorting the
    // parallel interleaving must reproduce it exactly.
    assert_eq!(parallel, sequential);
}

#[test]
fn sinks_render_the_trace() {
    let events = run_traced_events();
    let jsonl = sos_observe::write_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(jsonl.contains("\"kind\":\"break_in_attempt\""));

    let timeline = sos_observe::render_timeline(&events);
    assert!(timeline.contains("trial 0"));
    assert!(timeline.contains("trial 2"));
    assert!(timeline.contains("break-in"));
    assert!(timeline.contains("routing"));
}
