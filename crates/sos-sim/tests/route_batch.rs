//! The batched SoA route kernel must be observationally pure: every
//! lane equals the scalar `route_message_hint` oracle (same
//! delivered/hops/incidents, same RNG sub-stream), and whole-run
//! results are byte-identical at any batch width and thread count —
//! each route draws from its own `route_lane_seed` stream, so lane
//! order and chunking cannot perturb draws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sos_attack::OneBurstAttacker;
use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos_faults::{FaultConfig, FaultPlan, RetryPolicy};
use sos_overlay::{ChordRing, NodeBitSet, NodeId, Overlay, Transport};
use sos_sim::engine::{SimulationConfig, TransportKind};
use sos_sim::routing::{route_message_hint, RouteScratch, RoutingPolicy};
use sos_sim::{
    route_lane_seed, set_route_batch_width, stream, trial_stream_seed, RouteBatchScratch,
    Simulation, SweepExecutor,
};

const POLICIES: [RoutingPolicy; 3] = [
    RoutingPolicy::RandomGood,
    RoutingPolicy::FirstGood,
    RoutingPolicy::Backtracking,
];

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(500, 45, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap()
}

/// A damaged overlay plus transport, the way the engine prepares one:
/// build, attack, sync, then resolve the ring liveness mask once.
fn damaged(seed: u64, chord: bool, faults: Option<&FaultPlan>) -> (Overlay, Transport, NodeBitSet) {
    let sc = scenario();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overlay = Overlay::build(&sc, &mut rng);
    let mut transport = if chord {
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let mut ring_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        Transport::Chord(ChordRing::build(&mut ring_rng, &members))
    } else {
        Transport::Direct
    };
    let mut attack_rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    OneBurstAttacker::new(AttackBudget::new(60, 90)).execute(&mut overlay, &mut attack_rng);
    transport.sync_damage(&overlay);
    let mut mask = NodeBitSet::new();
    let has_mask = transport.refresh_alive_positions(&overlay, faults, &mut mask);
    assert_eq!(has_mask, chord, "chord transports always produce a mask");
    (overlay, transport, mask)
}

/// Evaluates `count` lanes through the kernel in the given mode and
/// clones the per-lane results out.
#[allow(clippy::too_many_arguments)]
fn kernel_results(
    overlay: &Overlay,
    transport: &Transport,
    policy: RoutingPolicy,
    faults: Option<&FaultPlan>,
    route_master: u64,
    count: usize,
    alive: Option<&NodeBitSet>,
    batched: bool,
) -> Vec<sos_sim::routing::RouteResult> {
    let mut kernel = RouteBatchScratch::new();
    let mut oracle = RouteScratch::new();
    kernel.begin_trial();
    kernel.evaluate(
        overlay,
        transport,
        policy,
        faults,
        &RetryPolicy::none(),
        route_master,
        0,
        count,
        alive,
        &mut oracle,
        batched,
    );
    (0..count).map(|k| kernel.result(k).clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lane-for-lane: the batched fast path equals the scalar oracle —
    /// and both equal a by-hand `route_message_hint` call seeded with
    /// the public `route_lane_seed` derivation — across all three
    /// routing policies, both transports, and fault plane on/off.
    #[test]
    fn kernel_lanes_match_scalar_oracle(seed in 0..1_000u64, trial in 0..50u64) {
        let fault_cfg = FaultConfig::none().loss(0.25).delay(0.2, 2).seed(9);
        let route_master = trial_stream_seed(seed, stream::ROUTE, trial);
        let count = 24usize;
        for chord in [false, true] {
            for policy in POLICIES {
                for faulted in [false, true] {
                    let plan_mask = faulted.then(|| FaultPlan::new(&fault_cfg, trial));
                    let (overlay, transport, mask) = damaged(seed, chord, plan_mask.as_ref());
                    let alive = chord.then_some(&mask);

                    let plan_a = faulted.then(|| FaultPlan::new(&fault_cfg, trial));
                    let fast = kernel_results(
                        &overlay, &transport, policy, plan_a.as_ref(),
                        route_master, count, alive, true,
                    );
                    let plan_b = faulted.then(|| FaultPlan::new(&fault_cfg, trial));
                    let slow = kernel_results(
                        &overlay, &transport, policy, plan_b.as_ref(),
                        route_master, count, alive, false,
                    );
                    prop_assert_eq!(
                        &fast, &slow,
                        "kernel != oracle: chord={} policy={} faults={}",
                        chord, policy, faulted
                    );

                    // And a by-hand scalar loop over the public lane-seed
                    // helper reproduces the same lanes.
                    let plan_c = faulted.then(|| FaultPlan::new(&fault_cfg, trial));
                    let mut scratch = RouteScratch::new();
                    for (k, expect) in fast.iter().enumerate() {
                        let mut rng = StdRng::seed_from_u64(
                            route_lane_seed(seed, trial, k as u64),
                        );
                        let manual = route_message_hint(
                            &overlay, &transport, policy, plan_c.as_ref(),
                            &RetryPolicy::none(), &mut rng, &mut scratch, alive,
                        );
                        prop_assert_eq!(
                            manual, expect,
                            "lane {} != manual: chord={} policy={} faults={}",
                            k, chord, policy, faulted
                        );
                    }
                }
            }
        }
    }
}

fn sim_config(
    transport: TransportKind,
    policy: RoutingPolicy,
    faulted: bool,
) -> SimulationConfig {
    let mut cfg = SimulationConfig::new(
        scenario(),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(40, 70),
        },
    )
    .trials(12)
    .routes_per_trial(30)
    .seed(11)
    .transport(transport)
    .policy(policy);
    if faulted {
        cfg = cfg.faults(FaultConfig::none().loss(0.2).seed(3));
    }
    cfg
}

/// `run_parallel` output is byte-identical across batch widths 1/4/16/64
/// and 1/2/4/8 threads, for greedy and backtracking policies, both
/// transports, fault plane on and off.
#[test]
fn run_parallel_byte_identical_across_widths_and_threads() {
    for transport in [TransportKind::Direct, TransportKind::Chord] {
        for (policy, faulted) in [
            (RoutingPolicy::RandomGood, false),
            (RoutingPolicy::FirstGood, false),
            (RoutingPolicy::Backtracking, false),
            (RoutingPolicy::RandomGood, true),
        ] {
            let cfg = sim_config(transport, policy, faulted);
            let sim = Simulation::new(cfg);
            let mut reference: Option<String> = None;
            for width in [1usize, 4, 16, 64] {
                set_route_batch_width(width);
                for threads in [1usize, 2, 4, 8] {
                    let json = serde_json::to_string(&sim.run_parallel(threads)).unwrap();
                    match &reference {
                        None => reference = Some(json),
                        Some(expect) => assert_eq!(
                            expect, &json,
                            "width {width} / {threads} threads diverged \
                             ({transport:?} {policy} faults={faulted})"
                        ),
                    }
                }
            }
            set_route_batch_width(64);
        }
    }
}

/// `run_sweep` (the pooled executor) is byte-identical across batch
/// widths too — the kernel lives below the sweep scheduler, so cached
/// and recomputed points agree at any width.
#[test]
fn run_sweep_byte_identical_across_widths() {
    let configs: Vec<SimulationConfig> = [TransportKind::Direct, TransportKind::Chord]
        .into_iter()
        .flat_map(|t| {
            POLICIES
                .into_iter()
                .map(move |p| sim_config(t, p, false).trials(8))
        })
        .collect();
    let mut reference: Option<String> = None;
    for width in [1usize, 4, 16, 64] {
        set_route_batch_width(width);
        let results = SweepExecutor::with_threads(4).run(&configs);
        let json = serde_json::to_string(&results).unwrap();
        match &reference {
            None => reference = Some(json),
            Some(expect) => assert_eq!(expect, &json, "sweep diverged at width {width}"),
        }
    }
    set_route_batch_width(64);
}

/// Fig. 4-style statistical check: after the per-route stream
/// migration the Monte Carlo delivery probability still matches the
/// paper's hypergeometric evaluator priced on the same realized damage
/// (the distribution is unchanged even though the draws moved to
/// dedicated `ROUTE` sub-streams).
#[test]
fn mc_still_matches_analytic_model_after_stream_migration() {
    let cfg = SimulationConfig::new(
        scenario(),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(0, 120),
        },
    )
    .trials(80)
    .routes_per_trial(50)
    .seed(29);
    let result = Simulation::new(cfg).run_parallel(4);
    let mc = result.success_rate();
    let analytic = result.realized_ps_hypergeometric;
    assert!(
        (mc - analytic).abs() < 0.04,
        "MC {mc} vs hypergeometric {analytic}"
    );
}
