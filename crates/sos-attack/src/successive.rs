//! The successive attacker (§3.2 / Algorithm 1), executed on a concrete
//! overlay.

use crate::knowledge::AttackerKnowledge;
use crate::one_burst::{attempt_break_in, execute_congestion_phase};
use crate::outcome::{AttackOutcome, RoundSummary};
use crate::trace::AttackEvent;
use rand::Rng;
use sos_core::{AttackBudget, SuccessiveParams};
use sos_observe::telemetry::{PhaseKind, PhaseTimer};
use sos_math::sampling::{proportional_split, sample_from, stochastic_round};
use sos_overlay::{NodeId, Overlay};

/// Executes Algorithm 1 literally: `R` rounds of disclosure-guided
/// break-ins seeded by prior knowledge of the first layer, then the
/// congestion phase.
///
/// The round quota `α = N_T / R` is realized with integer quotas that
/// sum exactly to `N_T` (largest-remainder split), and the fractional
/// prior knowledge `n_1 · P_E` with unbiased stochastic rounding, so
/// ensemble averages match the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct SuccessiveAttacker {
    budget: AttackBudget,
    params: SuccessiveParams,
}

impl SuccessiveAttacker {
    /// Creates the attacker with the given resources and round plan.
    pub fn new(budget: AttackBudget, params: SuccessiveParams) -> Self {
        SuccessiveAttacker { budget, params }
    }

    /// The attacker's resources.
    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    /// The round plan.
    pub fn params(&self) -> SuccessiveParams {
        self.params
    }

    /// Runs the attack, mutating node statuses on `overlay`.
    ///
    /// # Panics
    ///
    /// Panics if `N_T` exceeds the overlay population.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        overlay: &mut Overlay,
        rng: &mut R,
    ) -> AttackOutcome {
        let big_n = overlay.overlay_node_count();
        let n_t = self.budget.break_in_trials as usize;
        assert!(
            n_t <= big_n,
            "N_T = {n_t} exceeds the overlay population {big_n}"
        );
        let r = self.params.rounds();
        let quotas = proportional_split(n_t as u64, &vec![1.0; r as usize]);

        let mut knowledge = AttackerKnowledge::new();
        let mut outcome = AttackOutcome::default();
        let mut timer = PhaseTimer::start();

        // Prior knowledge: the attacker knows ~n_1 · P_E first-layer
        // nodes before the attack (the paper's round-0 "disclosure").
        let first_layer = overlay.layer_members(1).to_vec();
        let prior = stochastic_round(
            rng,
            first_layer.len() as f64 * self.params.prior_knowledge().value(),
        )
        .min(first_layer.len() as u64) as usize;
        for node in sample_from(rng, &first_layer, prior) {
            knowledge.disclose(node);
            outcome.disclosed.push(node);
            outcome.trace.record(AttackEvent::PriorKnowledge { node });
        }

        let mut beta = n_t;
        for round in 1..=r {
            if beta == 0 {
                break;
            }
            let pending = knowledge.pending_sorted();
            let x = pending.len();
            let alpha = quotas[(round - 1) as usize] as usize;

            // Algorithm 1 case selection.
            let (deterministic_targets, random_count, terminal, case) = if x >= beta {
                // Case 4: more disclosed nodes than budget.
                (sample_from(rng, &pending, beta), 0usize, true, 4u8)
            } else if beta <= alpha {
                // Case 2: the whole remaining budget fits this round.
                (pending.clone(), beta - x, true, 2)
            } else if x < alpha {
                // Case 1: quota covers the disclosed nodes with room to
                // spare.
                (pending.clone(), alpha - x, false, 1)
            } else {
                // Case 3: disclosed nodes exceed the quota (borrow from
                // β) but not the whole budget.
                (pending.clone(), 0usize, false, 3)
            };
            outcome.trace.record(AttackEvent::RoundPlan {
                round,
                case,
                known: x as u32,
            });

            let mut broken_this_round = 0usize;
            let mut newly_disclosed = 0usize;
            let attempted_disclosed = deterministic_targets.len();
            for node in deterministic_targets {
                let before = outcome.broken.len();
                newly_disclosed +=
                    attempt_break_in(overlay, &mut knowledge, &mut outcome, node, round, rng);
                broken_this_round += outcome.broken.len() - before;
            }

            // Random phase: untouched overlay nodes only (never re-attack
            // and never waste budget on nodes already known — those were
            // either just attacked or are queued for the next round).
            let mut attempted_random = 0usize;
            if random_count > 0 {
                let candidates: Vec<NodeId> = overlay
                    .overlay_ids()
                    .filter(|&id| !knowledge.has_attempted(id) && !knowledge.knows(id))
                    .collect();
                let picks = sample_from(rng, &candidates, random_count.min(candidates.len()));
                attempted_random = picks.len();
                for node in picks {
                    let before = outcome.broken.len();
                    newly_disclosed +=
                        attempt_break_in(overlay, &mut knowledge, &mut outcome, node, round, rng);
                    broken_this_round += outcome.broken.len() - before;
                }
            }

            beta -= attempted_disclosed + attempted_random;
            outcome.rounds.push(RoundSummary {
                round,
                known_at_start: x,
                attempted_disclosed,
                attempted_random,
                broken: broken_this_round,
                newly_disclosed,
            });
            if terminal {
                break;
            }
        }

        outcome.leftover_disclosed = knowledge.pending().len();
        timer.lap(PhaseKind::BreakIn);
        execute_congestion_phase(
            overlay,
            &knowledge,
            self.budget.congestion_capacity as usize,
            rng,
            &mut outcome,
        );
        timer.lap(PhaseKind::Congestion);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};
    use sos_overlay::Role;

    fn overlay(p_b: f64, mapping: MappingDegree, seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(2_000, 90, p_b).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    fn attacker(n_t: u64, n_c: u64, r: u32, p_e: f64) -> SuccessiveAttacker {
        SuccessiveAttacker::new(
            AttackBudget::new(n_t, n_c),
            SuccessiveParams::new(r, p_e).unwrap(),
        )
    }

    #[test]
    fn budget_is_conserved() {
        let mut o = overlay(0.5, MappingDegree::OneTo(3), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = attacker(300, 400, 3, 0.2).execute(&mut o, &mut rng);
        assert!(outcome.total_attempts() <= 300);
        assert!(outcome.total_congested() <= 400);
        // With plenty of untouched nodes the break-in budget is spent in
        // full.
        assert_eq!(outcome.total_attempts(), 300);
    }

    #[test]
    fn runs_at_most_r_rounds() {
        let mut o = overlay(0.5, MappingDegree::OneTo(2), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = attacker(300, 0, 4, 0.2).execute(&mut o, &mut rng);
        assert!(outcome.rounds.len() <= 4);
        assert!(!outcome.rounds.is_empty());
    }

    #[test]
    fn prior_knowledge_is_attacked_in_round_one() {
        let mut o = overlay(0.5, MappingDegree::OneTo(2), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = attacker(300, 0, 3, 0.5).execute(&mut o, &mut rng);
        let r1 = &outcome.rounds[0];
        // n_1 = 30, P_E = 0.5 ⇒ ~15 known nodes attacked first.
        assert!(r1.known_at_start >= 13 && r1.known_at_start <= 17);
        assert_eq!(r1.attempted_disclosed, r1.known_at_start);
    }

    #[test]
    fn later_rounds_attack_disclosed_nodes() {
        // With P_B = 1 every attempt discloses, so round 2 must have
        // deterministic targets.
        let mut o = overlay(1.0, MappingDegree::OneTo(3), 7);
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = attacker(400, 0, 3, 0.2).execute(&mut o, &mut rng);
        assert!(outcome.rounds.len() >= 2);
        let r2 = &outcome.rounds[1];
        assert!(
            r2.attempted_disclosed > 0,
            "round 2 should chase round-1 disclosures: {r2:?}"
        );
    }

    #[test]
    fn filters_are_never_attempted() {
        let mut o = overlay(1.0, MappingDegree::OneToAll, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = attacker(1_000, 1_000, 3, 0.2).execute(&mut o, &mut rng);
        for &a in &outcome.attempted {
            assert_ne!(o.role(a), Role::Filter, "attempted filter {a}");
        }
        // But disclosed filters are congested.
        let congested_filters = outcome
            .congested
            .iter()
            .filter(|&&c| o.role(c) == Role::Filter)
            .count();
        assert!(congested_filters > 0, "disclosed filters must be congested");
    }

    #[test]
    fn budget_exhaustion_leaves_pending_targets_congested() {
        // Tiny N_T with full prior knowledge: round 1 is Case 4.
        let mut o = overlay(0.5, MappingDegree::OneTo(2), 11);
        let mut rng = StdRng::seed_from_u64(12);
        let outcome = attacker(5, 500, 3, 1.0).execute(&mut o, &mut rng);
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.total_attempts(), 5);
        // 25 known first-layer nodes were left unattacked; break-ins
        // among the 5 attacked may have disclosed more.
        assert!(outcome.leftover_disclosed >= 30 - 5);
        // All leftover first-layer nodes are congested.
        let bad_first = o
            .layer_members(1)
            .iter()
            .filter(|&&n| !o.is_good(n))
            .count();
        assert_eq!(bad_first, 30, "entire known first layer must be bad");
    }

    #[test]
    fn more_rounds_disclose_more() {
        // Averaged over seeds, more rounds means more disclosure-guided
        // targeting (P_B = 1 maximizes the cascade).
        let total_known = |r: u32| -> usize {
            (0..20)
                .map(|seed| {
                    let mut o = overlay(1.0, MappingDegree::OneTo(5), 100 + seed);
                    let mut rng = StdRng::seed_from_u64(200 + seed);
                    let outcome = attacker(100, 0, r, 0.2).execute(&mut o, &mut rng);
                    outcome.disclosed.len()
                })
                .sum()
        };
        let one = total_known(1);
        let four = total_known(4);
        assert!(
            four > one,
            "4 rounds should disclose more than 1: {four} vs {one}"
        );
    }

    #[test]
    fn single_round_no_prior_matches_one_burst_statistically() {
        use crate::one_burst::OneBurstAttacker;
        // Same budget, R=1, P_E=0: the two attackers are the same
        // process; compare bad-node counts across seeds.
        let mut succ_total = 0usize;
        let mut burst_total = 0usize;
        for seed in 0..30 {
            let mut o1 = overlay(0.5, MappingDegree::OneTo(3), 300 + seed);
            let mut rng1 = StdRng::seed_from_u64(400 + seed);
            attacker(200, 300, 1, 0.0).execute(&mut o1, &mut rng1);
            succ_total += o1.total_bad();

            let mut o2 = overlay(0.5, MappingDegree::OneTo(3), 300 + seed);
            let mut rng2 = StdRng::seed_from_u64(400 + seed);
            OneBurstAttacker::new(AttackBudget::new(200, 300))
                .execute(&mut o2, &mut rng2);
            burst_total += o2.total_bad();
        }
        let diff = (succ_total as f64 - burst_total as f64).abs()
            / burst_total.max(1) as f64;
        assert!(diff < 0.05, "succ {succ_total} vs burst {burst_total}");
    }
}
