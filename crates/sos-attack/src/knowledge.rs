//! The attacker's evolving view of the system.

use sos_overlay::{NodeBitSet, NodeId};

/// Bookkeeping of everything the attacker has learned or done.
///
/// Backed by [`NodeBitSet`]s rather than hash sets: membership probes
/// are one bit test, and resetting knowledge between trials costs
/// O(words) with no allocation — the representation the zero-rebuild
/// trial engine needs. Iteration over a bitset is naturally in
/// ascending id order, which is exactly the deterministic ordering
/// [`pending_sorted`](AttackerKnowledge::pending_sorted) and
/// [`congestion_targets`](AttackerKnowledge::congestion_targets)
/// guarantee.
///
/// Invariants maintained by the mutators:
///
/// * `attempted`, `broken` and `pending` are pairwise consistent —
///   a broken node is always attempted, never pending;
/// * `known_sos` holds every node whose SOS/filter membership the
///   attacker has learned (disclosed by a captured neighbor table or
///   known a priori), whether or not it was later attacked;
/// * `pending` ⊆ `known_sos` \ `attempted`: the disclosed nodes the
///   attacker has not yet acted on (Algorithm 1's `X_j`).
#[derive(Debug, Clone, Default)]
pub struct AttackerKnowledge {
    attempted: NodeBitSet,
    broken: NodeBitSet,
    known_sos: NodeBitSet,
    pending: NodeBitSet,
}

impl AttackerKnowledge {
    /// Fresh, empty knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a node as known a priori or disclosed by a break-in. Nodes
    /// already attempted stay out of the pending queue.
    pub fn disclose(&mut self, node: NodeId) {
        self.known_sos.insert(node);
        if !self.attempted.contains(node) {
            self.pending.insert(node);
        }
    }

    /// Marks a node as known without queueing it for break-in — used for
    /// filters, which the paper treats as impossible to break into
    /// (they are congested directly in the congestion phase).
    pub fn disclose_unbreakable(&mut self, node: NodeId) {
        self.known_sos.insert(node);
    }

    /// Records a break-in attempt and its result.
    ///
    /// # Panics
    ///
    /// Panics if the node was already attempted — the attacker never
    /// attacks a node twice (the paper's assumption), so a repeat is a
    /// caller bug.
    pub fn record_attempt(&mut self, node: NodeId, succeeded: bool) {
        assert!(
            self.attempted.insert(node),
            "{node} was attempted twice"
        );
        self.pending.remove(node);
        if succeeded {
            self.broken.insert(node);
        }
    }

    /// Whether the attacker has already attempted this node.
    pub fn has_attempted(&self, node: NodeId) -> bool {
        self.attempted.contains(node)
    }

    /// Whether the attacker knows this node is part of the architecture.
    pub fn knows(&self, node: NodeId) -> bool {
        self.known_sos.contains(node)
    }

    /// Nodes attempted so far (successfully or not).
    pub fn attempted(&self) -> &NodeBitSet {
        &self.attempted
    }

    /// Nodes broken into.
    pub fn broken(&self) -> &NodeBitSet {
        &self.broken
    }

    /// Disclosed nodes not yet attacked (`X_j`).
    pub fn pending(&self) -> &NodeBitSet {
        &self.pending
    }

    /// Every node whose SOS/filter membership the attacker has learned.
    /// Together with [`broken`](Self::broken) this is the word-level
    /// form of [`congestion_targets`](Self::congestion_targets)
    /// (`known_sos \ broken`) that the batched congestion sampler
    /// consumes without materializing the target `Vec`.
    pub fn known_sos(&self) -> &NodeBitSet {
        &self.known_sos
    }

    /// The pending queue in a deterministic (sorted) order — determinism
    /// keeps simulations reproducible under a fixed seed. Entries leave
    /// the queue when they are attempted via
    /// [`record_attempt`](Self::record_attempt).
    pub fn pending_sorted(&self) -> Vec<NodeId> {
        self.pending.to_sorted_vec()
    }

    /// The congestion-phase target list: every known node that was not
    /// broken into (the attacker never congests a node it controls),
    /// sorted for determinism.
    pub fn congestion_targets(&self) -> Vec<NodeId> {
        self.known_sos
            .iter()
            .filter(|&n| !self.broken.contains(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosure_feeds_pending() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(3));
        k.disclose(NodeId(5));
        assert!(k.knows(NodeId(3)));
        assert_eq!(k.pending().len(), 2);
        assert_eq!(k.pending_sorted(), vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn attempts_clear_pending() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(1));
        k.record_attempt(NodeId(1), false);
        assert!(k.pending().is_empty());
        assert!(k.has_attempted(NodeId(1)));
        assert!(!k.broken().contains(NodeId(1)));
    }

    #[test]
    fn disclosure_after_attempt_not_pending_but_targeted() {
        let mut k = AttackerKnowledge::new();
        k.record_attempt(NodeId(9), false);
        k.disclose(NodeId(9)); // learned later that it is an SOS node
        assert!(k.pending().is_empty(), "already attempted");
        assert_eq!(k.congestion_targets(), vec![NodeId(9)]);
    }

    #[test]
    fn broken_nodes_never_congestion_targets() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(2));
        k.record_attempt(NodeId(2), true);
        k.disclose(NodeId(4));
        assert_eq!(k.congestion_targets(), vec![NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "attempted twice")]
    fn double_attempt_panics() {
        let mut k = AttackerKnowledge::new();
        k.record_attempt(NodeId(1), false);
        k.record_attempt(NodeId(1), true);
    }

    #[test]
    fn bitset_knowledge_matches_reference_hashset_model() {
        // Drive the knowledge API and an independent HashSet model with
        // the same operation stream and demand identical observable
        // state throughout — the NodeBitSet-vs-HashSet churn guarantee.
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut k = AttackerKnowledge::new();
        let mut attempted: HashSet<NodeId> = HashSet::new();
        let mut broken: HashSet<NodeId> = HashSet::new();
        let mut known: HashSet<NodeId> = HashSet::new();
        let mut pending: HashSet<NodeId> = HashSet::new();
        for _ in 0..4_000 {
            let node = NodeId(rng.gen_range(0..600u32));
            match rng.gen_range(0..3u8) {
                0 => {
                    k.disclose(node);
                    known.insert(node);
                    if !attempted.contains(&node) {
                        pending.insert(node);
                    }
                }
                1 => {
                    k.disclose_unbreakable(node);
                    known.insert(node);
                }
                _ => {
                    if attempted.contains(&node) {
                        assert!(k.has_attempted(node));
                        continue;
                    }
                    let succeeded = rng.gen::<bool>();
                    k.record_attempt(node, succeeded);
                    attempted.insert(node);
                    pending.remove(&node);
                    if succeeded {
                        broken.insert(node);
                    }
                }
            }
            assert_eq!(k.attempted().len(), attempted.len());
            assert_eq!(k.broken().len(), broken.len());
            assert_eq!(k.pending().len(), pending.len());
        }
        let sorted = |s: &HashSet<NodeId>| {
            let mut v: Vec<NodeId> = s.iter().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(k.pending_sorted(), sorted(&pending));
        assert_eq!(k.attempted().to_sorted_vec(), sorted(&attempted));
        assert_eq!(k.broken().to_sorted_vec(), sorted(&broken));
        let expect_targets = sorted(&known.difference(&broken).copied().collect());
        assert_eq!(k.congestion_targets(), expect_targets);
    }
}
