//! The attacker's evolving view of the system.

use sos_overlay::NodeId;
use std::collections::HashSet;

/// Bookkeeping of everything the attacker has learned or done.
///
/// Invariants maintained by the mutators:
///
/// * `attempted`, `broken` and `pending` are pairwise consistent —
///   a broken node is always attempted, never pending;
/// * `known_sos` holds every node whose SOS/filter membership the
///   attacker has learned (disclosed by a captured neighbor table or
///   known a priori), whether or not it was later attacked;
/// * `pending` ⊆ `known_sos` \ `attempted`: the disclosed nodes the
///   attacker has not yet acted on (Algorithm 1's `X_j`).
#[derive(Debug, Clone, Default)]
pub struct AttackerKnowledge {
    attempted: HashSet<NodeId>,
    broken: HashSet<NodeId>,
    known_sos: HashSet<NodeId>,
    pending: HashSet<NodeId>,
}

impl AttackerKnowledge {
    /// Fresh, empty knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a node as known a priori or disclosed by a break-in. Nodes
    /// already attempted stay out of the pending queue.
    pub fn disclose(&mut self, node: NodeId) {
        self.known_sos.insert(node);
        if !self.attempted.contains(&node) {
            self.pending.insert(node);
        }
    }

    /// Marks a node as known without queueing it for break-in — used for
    /// filters, which the paper treats as impossible to break into
    /// (they are congested directly in the congestion phase).
    pub fn disclose_unbreakable(&mut self, node: NodeId) {
        self.known_sos.insert(node);
    }

    /// Records a break-in attempt and its result.
    ///
    /// # Panics
    ///
    /// Panics if the node was already attempted — the attacker never
    /// attacks a node twice (the paper's assumption), so a repeat is a
    /// caller bug.
    pub fn record_attempt(&mut self, node: NodeId, succeeded: bool) {
        assert!(
            self.attempted.insert(node),
            "{node} was attempted twice"
        );
        self.pending.remove(&node);
        if succeeded {
            self.broken.insert(node);
        }
    }

    /// Whether the attacker has already attempted this node.
    pub fn has_attempted(&self, node: NodeId) -> bool {
        self.attempted.contains(&node)
    }

    /// Whether the attacker knows this node is part of the architecture.
    pub fn knows(&self, node: NodeId) -> bool {
        self.known_sos.contains(&node)
    }

    /// Nodes attempted so far (successfully or not).
    pub fn attempted(&self) -> &HashSet<NodeId> {
        &self.attempted
    }

    /// Nodes broken into.
    pub fn broken(&self) -> &HashSet<NodeId> {
        &self.broken
    }

    /// Disclosed nodes not yet attacked (`X_j`).
    pub fn pending(&self) -> &HashSet<NodeId> {
        &self.pending
    }

    /// The pending queue in a deterministic (sorted) order — determinism
    /// keeps simulations reproducible under a fixed seed. Entries leave
    /// the queue when they are attempted via
    /// [`record_attempt`](Self::record_attempt).
    pub fn pending_sorted(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.pending.iter().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// The congestion-phase target list: every known node that was not
    /// broken into (the attacker never congests a node it controls),
    /// sorted for determinism.
    pub fn congestion_targets(&self) -> Vec<NodeId> {
        let mut targets: Vec<NodeId> = self
            .known_sos
            .difference(&self.broken)
            .copied()
            .collect();
        targets.sort_unstable();
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosure_feeds_pending() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(3));
        k.disclose(NodeId(5));
        assert!(k.knows(NodeId(3)));
        assert_eq!(k.pending().len(), 2);
        assert_eq!(k.pending_sorted(), vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn attempts_clear_pending() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(1));
        k.record_attempt(NodeId(1), false);
        assert!(k.pending().is_empty());
        assert!(k.has_attempted(NodeId(1)));
        assert!(!k.broken().contains(&NodeId(1)));
    }

    #[test]
    fn disclosure_after_attempt_not_pending_but_targeted() {
        let mut k = AttackerKnowledge::new();
        k.record_attempt(NodeId(9), false);
        k.disclose(NodeId(9)); // learned later that it is an SOS node
        assert!(k.pending().is_empty(), "already attempted");
        assert_eq!(k.congestion_targets(), vec![NodeId(9)]);
    }

    #[test]
    fn broken_nodes_never_congestion_targets() {
        let mut k = AttackerKnowledge::new();
        k.disclose(NodeId(2));
        k.record_attempt(NodeId(2), true);
        k.disclose(NodeId(4));
        assert_eq!(k.congestion_targets(), vec![NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "attempted twice")]
    fn double_attempt_panics() {
        let mut k = AttackerKnowledge::new();
        k.record_attempt(NodeId(1), false);
        k.record_attempt(NodeId(1), true);
    }
}
