//! The traffic-monitoring attacker — the paper's §5 future work.
//!
//! *"during the break-in phase of the attack, the attacker can also
//! find previous layer nodes of an attacked node by monitoring the
//! on-going traffic and can also build up a layering model of the
//! architecture causing an increased damage to the system."*
//!
//! [`MonitoringAttacker`] extends the successive attacker with
//! **backward disclosure**: when a node is broken into, the attacker
//! taps its ingress traffic for a while; each previous-layer node that
//! routes through the captured node is identified with probability
//! [`MonitoringAttacker::tap_probability`] per neighbor relationship.
//! Disclosure therefore spreads in *both* directions — down the
//! neighbor tables (the paper's model) and up the traffic (the
//! extension), which is why even prior knowledge limited to the first
//! layer can unravel deep architectures.
//!
//! The attacker also builds a [`LayeringModel`]: its inferred layer
//! index for every node it has identified, which downstream analyses
//! can inspect to see how much structure leaked.

use crate::knowledge::AttackerKnowledge;
use crate::one_burst::{attempt_break_in, execute_congestion_phase};
use crate::outcome::{AttackOutcome, RoundSummary};
use crate::trace::AttackEvent;
use rand::Rng;
use sos_core::{AttackBudget, SuccessiveParams};
use sos_math::sampling::{bernoulli, proportional_split, sample_from, stochastic_round};
use sos_observe::telemetry::{PhaseKind, PhaseTimer};
use sos_overlay::{NodeId, Overlay, Role};
use std::collections::HashMap;

/// The attacker's inferred map of the architecture: node → believed
/// 1-based layer.
#[derive(Debug, Clone, Default)]
pub struct LayeringModel {
    inferred: HashMap<NodeId, usize>,
}

impl LayeringModel {
    /// Records that `node` is believed to sit at `layer`.
    pub fn learn(&mut self, node: NodeId, layer: usize) {
        self.inferred.entry(node).or_insert(layer);
    }

    /// The believed layer of a node, if any.
    pub fn layer_of(&self, node: NodeId) -> Option<usize> {
        self.inferred.get(&node).copied()
    }

    /// Number of nodes whose layer the attacker believes it knows.
    pub fn mapped_nodes(&self) -> usize {
        self.inferred.len()
    }

    /// Fraction of inferred layers that are correct on `overlay`.
    pub fn accuracy(&self, overlay: &Overlay) -> f64 {
        if self.inferred.is_empty() {
            return 0.0;
        }
        let correct = self
            .inferred
            .iter()
            .filter(|(node, layer)| overlay.layer_of(**node) == Some(**layer))
            .count();
        correct as f64 / self.inferred.len() as f64
    }
}

/// Successive attacker augmented with traffic monitoring (backward
/// disclosure) and layering-model inference.
#[derive(Debug, Clone, Copy)]
pub struct MonitoringAttacker {
    budget: AttackBudget,
    params: SuccessiveParams,
    tap_probability: f64,
}

/// Outcome of a monitoring attack: the base outcome plus the inferred
/// layering model.
#[derive(Debug, Clone)]
pub struct MonitoringOutcome {
    /// The standard attack record.
    pub outcome: AttackOutcome,
    /// What the attacker inferred about the architecture's structure.
    pub layering: LayeringModel,
    /// Nodes disclosed *backward* (via traffic taps) rather than from
    /// neighbor tables.
    pub backward_disclosed: usize,
}

impl MonitoringAttacker {
    /// Creates the attacker.
    ///
    /// `tap_probability` is the chance that monitoring a captured node
    /// identifies any given previous-layer node that routes through it.
    ///
    /// # Panics
    ///
    /// Panics if `tap_probability` is outside `[0, 1]`.
    pub fn new(budget: AttackBudget, params: SuccessiveParams, tap_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tap_probability),
            "tap probability out of range: {tap_probability}"
        );
        MonitoringAttacker {
            budget,
            params,
            tap_probability,
        }
    }

    /// Probability a traffic tap identifies a given upstream neighbor.
    pub fn tap_probability(&self) -> f64 {
        self.tap_probability
    }

    /// Runs the attack, mutating node statuses on `overlay`.
    ///
    /// # Panics
    ///
    /// Panics if `N_T` exceeds the overlay population.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        overlay: &mut Overlay,
        rng: &mut R,
    ) -> MonitoringOutcome {
        let big_n = overlay.overlay_node_count();
        let n_t = self.budget.break_in_trials as usize;
        assert!(
            n_t <= big_n,
            "N_T = {n_t} exceeds the overlay population {big_n}"
        );

        // Reverse adjacency: who routes *into* each node. This is what a
        // tap on the node can observe.
        let mut upstream: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for layer in 1..=overlay.layer_count() {
            for &node in overlay.layer_members(layer) {
                for &next in overlay.neighbors(node) {
                    upstream.entry(next).or_default().push(node);
                }
            }
        }

        let r = self.params.rounds();
        let quotas = proportional_split(n_t as u64, &vec![1.0; r as usize]);
        let mut knowledge = AttackerKnowledge::new();
        let mut outcome = AttackOutcome::default();
        let mut layering = LayeringModel::default();
        let mut backward_disclosed = 0usize;
        let mut timer = PhaseTimer::start();

        // Prior knowledge of the first layer (known to be layer 1).
        let first_layer = overlay.layer_members(1).to_vec();
        let prior = stochastic_round(
            rng,
            first_layer.len() as f64 * self.params.prior_knowledge().value(),
        )
        .min(first_layer.len() as u64) as usize;
        for node in sample_from(rng, &first_layer, prior) {
            knowledge.disclose(node);
            layering.learn(node, 1);
            outcome.disclosed.push(node);
            outcome.trace.record(AttackEvent::PriorKnowledge { node });
        }

        let mut beta = n_t;
        for round in 1..=r {
            if beta == 0 {
                break;
            }
            let pending = knowledge.pending_sorted();
            let x = pending.len();
            let alpha = quotas[(round - 1) as usize] as usize;
            let (deterministic, random_count, terminal, case) = if x >= beta {
                (sample_from(rng, &pending, beta), 0usize, true, 4u8)
            } else if beta <= alpha {
                (pending.clone(), beta - x, true, 2)
            } else if x < alpha {
                (pending.clone(), alpha - x, false, 1)
            } else {
                (pending.clone(), 0usize, false, 3)
            };
            outcome.trace.record(AttackEvent::RoundPlan {
                round,
                case,
                known: x as u32,
            });

            let mut broken_this_round = 0usize;
            let mut newly_disclosed = 0usize;
            let attempted_disclosed = deterministic.len();
            let mut captured: Vec<NodeId> = Vec::new();
            for node in deterministic {
                let before = outcome.broken.len();
                newly_disclosed +=
                    attempt_break_in(overlay, &mut knowledge, &mut outcome, node, round, rng);
                if outcome.broken.len() > before {
                    captured.push(node);
                    broken_this_round += 1;
                }
            }
            let mut attempted_random = 0usize;
            if random_count > 0 {
                let candidates: Vec<NodeId> = overlay
                    .overlay_ids()
                    .filter(|&id| !knowledge.has_attempted(id) && !knowledge.knows(id))
                    .collect();
                let picks =
                    sample_from(rng, &candidates, random_count.min(candidates.len()));
                attempted_random = picks.len();
                for node in picks {
                    let before = outcome.broken.len();
                    newly_disclosed +=
                        attempt_break_in(overlay, &mut knowledge, &mut outcome, node, round, rng);
                    if outcome.broken.len() > before {
                        captured.push(node);
                        broken_this_round += 1;
                    }
                }
            }

            // Monitoring phase: taps on this round's captured nodes
            // reveal upstream (previous-layer) neighbors and forward
            // neighbors' layers for the layering model.
            for &node in &captured {
                let layer = overlay.layer_of(node);
                if let Some(layer) = layer {
                    layering.learn(node, layer);
                    // Forward neighbors: read straight from the table
                    // (already disclosed by attempt_break_in) — the tap
                    // places them one layer deeper.
                    for &next in overlay.neighbors(node) {
                        layering.learn(next, layer + 1);
                    }
                }
                if let Some(senders) = upstream.get(&node) {
                    for &sender in senders.clone().iter() {
                        if knowledge.knows(sender) {
                            continue;
                        }
                        if bernoulli(rng, self.tap_probability) {
                            backward_disclosed += 1;
                            newly_disclosed += 1;
                            outcome.disclosed.push(sender);
                            outcome.trace.record(AttackEvent::Disclosure {
                                round,
                                source: node,
                                revealed: sender,
                            });
                            if let Some(layer) = overlay.layer_of(node) {
                                layering.learn(sender, layer.saturating_sub(1).max(1));
                            }
                            if overlay.role(sender) == Role::Filter {
                                knowledge.disclose_unbreakable(sender);
                            } else {
                                knowledge.disclose(sender);
                            }
                        }
                    }
                }
            }

            beta -= attempted_disclosed + attempted_random;
            outcome.rounds.push(RoundSummary {
                round,
                known_at_start: x,
                attempted_disclosed,
                attempted_random,
                broken: broken_this_round,
                newly_disclosed,
            });
            if terminal {
                break;
            }
        }

        outcome.leftover_disclosed = knowledge.pending().len();
        timer.lap(PhaseKind::BreakIn);
        execute_congestion_phase(
            overlay,
            &knowledge,
            self.budget.congestion_capacity as usize,
            rng,
            &mut outcome,
        );
        timer.lap(PhaseKind::Congestion);
        MonitoringOutcome {
            outcome,
            layering,
            backward_disclosed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::successive::SuccessiveAttacker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};

    fn overlay(seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(2_000, 90, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(3))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    fn attacker(tap: f64) -> MonitoringAttacker {
        MonitoringAttacker::new(
            AttackBudget::new(200, 300),
            SuccessiveParams::new(3, 0.2).unwrap(),
            tap,
        )
    }

    #[test]
    fn zero_tap_matches_successive_statistically() {
        // With tap probability 0 the monitoring attacker adds nothing.
        let mut mon_bad = 0usize;
        let mut base_bad = 0usize;
        for seed in 0..20 {
            let mut o1 = overlay(seed);
            let mut rng1 = StdRng::seed_from_u64(500 + seed);
            attacker(0.0).execute(&mut o1, &mut rng1);
            mon_bad += o1.total_bad();

            let mut o2 = overlay(seed);
            let mut rng2 = StdRng::seed_from_u64(500 + seed);
            SuccessiveAttacker::new(
                AttackBudget::new(200, 300),
                SuccessiveParams::new(3, 0.2).unwrap(),
            )
            .execute(&mut o2, &mut rng2);
            base_bad += o2.total_bad();
        }
        let rel = (mon_bad as f64 - base_bad as f64).abs() / base_bad as f64;
        assert!(rel < 0.05, "monitoring(0) {mon_bad} vs successive {base_bad}");
    }

    #[test]
    fn taps_disclose_backward() {
        let mut o = overlay(3);
        let mut rng = StdRng::seed_from_u64(4);
        let result = attacker(1.0).execute(&mut o, &mut rng);
        assert!(
            result.backward_disclosed > 0,
            "full taps must reveal upstream nodes"
        );
        // Layer-1 nodes (undisclosable in the base model except via
        // P_E) appear among the disclosed via taps on layer-2 captures.
        let l1_disclosed = result
            .outcome
            .disclosed
            .iter()
            .filter(|&&d| o.layer_of(d) == Some(1))
            .count();
        assert!(l1_disclosed > 0);
    }

    #[test]
    fn monitoring_does_more_damage_than_base() {
        let mut tap_known = 0usize;
        let mut base_known = 0usize;
        for seed in 0..20 {
            let mut o1 = overlay(100 + seed);
            let mut rng1 = StdRng::seed_from_u64(700 + seed);
            let r = attacker(0.8).execute(&mut o1, &mut rng1);
            tap_known += r.outcome.disclosed.len();

            let mut o2 = overlay(100 + seed);
            let mut rng2 = StdRng::seed_from_u64(700 + seed);
            let b = SuccessiveAttacker::new(
                AttackBudget::new(200, 300),
                SuccessiveParams::new(3, 0.2).unwrap(),
            )
            .execute(&mut o2, &mut rng2);
            base_known += b.disclosed.len();
        }
        assert!(
            tap_known > base_known,
            "taps should increase disclosure: {tap_known} vs {base_known}"
        );
    }

    #[test]
    fn layering_model_is_accurate() {
        let mut o = overlay(5);
        let mut rng = StdRng::seed_from_u64(6);
        let result = attacker(1.0).execute(&mut o, &mut rng);
        assert!(result.layering.mapped_nodes() > 0);
        let acc = result.layering.accuracy(&o);
        assert!(
            acc > 0.9,
            "layer inference should be near-perfect in this model: {acc}"
        );
    }

    #[test]
    fn layering_model_first_write_wins() {
        let mut m = LayeringModel::default();
        m.learn(NodeId(1), 2);
        m.learn(NodeId(1), 3);
        assert_eq!(m.layer_of(NodeId(1)), Some(2));
        assert_eq!(m.mapped_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "tap probability out of range")]
    fn invalid_tap_probability_rejected() {
        MonitoringAttacker::new(
            AttackBudget::new(1, 1),
            SuccessiveParams::paper_default(),
            1.5,
        );
    }
}
