//! The one-burst attacker (§3.1), executed on a concrete overlay.

use crate::knowledge::AttackerKnowledge;
use crate::outcome::{AttackOutcome, RoundSummary};
use crate::trace::{AttackEvent, CongestionReason};
use rand::Rng;
use sos_core::AttackBudget;
use sos_observe::telemetry::{PhaseKind, PhaseTimer};
use sos_math::sampling::{bernoulli, sample_indices};
use sos_overlay::{NodeId, NodeStatus, Overlay, Role, WordSelect};

/// Executes §3.1 literally: `N_T` uniform break-in trials in one volley,
/// then congestion.
#[derive(Debug, Clone, Copy)]
pub struct OneBurstAttacker {
    budget: AttackBudget,
}

impl OneBurstAttacker {
    /// Creates the attacker with the given resources.
    pub fn new(budget: AttackBudget) -> Self {
        OneBurstAttacker { budget }
    }

    /// The attacker's resources.
    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    /// Runs the attack, mutating node statuses on `overlay`.
    ///
    /// # Panics
    ///
    /// Panics if `N_T` exceeds the overlay population (the attacker
    /// cannot attempt more distinct nodes than exist) — validated
    /// upstream for analytical runs, asserted here for direct use.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        overlay: &mut Overlay,
        rng: &mut R,
    ) -> AttackOutcome {
        let big_n = overlay.overlay_node_count();
        let n_t = self.budget.break_in_trials as usize;
        assert!(
            n_t <= big_n,
            "N_T = {n_t} exceeds the overlay population {big_n}"
        );

        let mut knowledge = AttackerKnowledge::new();
        let mut outcome = AttackOutcome::default();
        let mut timer = PhaseTimer::start();

        // Break-in phase: N_T distinct uniform targets.
        let targets: Vec<NodeId> = sample_indices(rng, big_n, n_t)
            .into_iter()
            .map(|i| NodeId(i as u32))
            .collect();
        let mut newly_disclosed = 0usize;
        for node in targets {
            newly_disclosed +=
                attempt_break_in(overlay, &mut knowledge, &mut outcome, node, 1, rng);
        }
        outcome.rounds.push(RoundSummary {
            round: 1,
            known_at_start: 0,
            attempted_disclosed: 0,
            attempted_random: outcome.attempted.len(),
            broken: outcome.broken.len(),
            newly_disclosed,
        });
        timer.lap(PhaseKind::BreakIn);

        // Congestion phase.
        execute_congestion_phase(
            overlay,
            &knowledge,
            self.budget.congestion_capacity as usize,
            rng,
            &mut outcome,
        );
        timer.lap(PhaseKind::Congestion);
        outcome
    }
}

/// Attempts a break-in on `node`, updating knowledge, outcome and the
/// overlay; returns how many nodes the capture newly disclosed.
pub(crate) fn attempt_break_in<R: Rng + ?Sized>(
    overlay: &mut Overlay,
    knowledge: &mut AttackerKnowledge,
    outcome: &mut AttackOutcome,
    node: NodeId,
    round: u32,
    rng: &mut R,
) -> usize {
    debug_assert!(
        overlay.role(node) != Role::Filter,
        "filters cannot be broken into"
    );
    let p_b = overlay.scenario().system().break_in_probability().value();
    let succeeded = bernoulli(rng, p_b);
    knowledge.record_attempt(node, succeeded);
    outcome.attempted.push(node);
    outcome.trace.record(AttackEvent::BreakInAttempt {
        round,
        node,
        succeeded,
    });
    let mut disclosed = 0usize;
    if succeeded {
        overlay.set_status(node, NodeStatus::Broken);
        outcome.broken.push(node);
        // Capturing the node exposes its next-layer neighbor table.
        for &neighbor in overlay.neighbors(node).to_vec().iter() {
            if knowledge.knows(neighbor) {
                continue;
            }
            disclosed += 1;
            outcome.disclosed.push(neighbor);
            outcome.trace.record(AttackEvent::Disclosure {
                round,
                source: node,
                revealed: neighbor,
            });
            if overlay.role(neighbor) == Role::Filter {
                knowledge.disclose_unbreakable(neighbor);
            } else {
                knowledge.disclose(neighbor);
            }
        }
    }
    disclosed
}

/// Phase 2 of both attack strategies: congest every known-but-not-broken
/// node if the budget allows (random spillover with the remainder), or a
/// random subset of them otherwise. Filters are never randomly congested.
///
/// Both draws are batched over bitset words. The target set
/// `known_sos \ broken` is counted by word-wise popcount and — when it
/// must be subsampled — resolved through a [`WordSelect`] rank/select
/// directory, so the per-trial target `Vec` and the full-overlay
/// `status()` scan of the spillover pool are gone. The Fisher–Yates
/// index draws depend only on `(pool size, k)`, and ascending bit index
/// equals the ascending order of the `Vec`s this replaces, so the RNG
/// consumption and the chosen nodes are byte-identical to the scalar
/// form (tested against an inline reference implementation below).
pub(crate) fn execute_congestion_phase<R: Rng + ?Sized>(
    overlay: &mut Overlay,
    knowledge: &AttackerKnowledge,
    capacity: usize,
    rng: &mut R,
    outcome: &mut AttackOutcome,
) {
    let known = knowledge.known_sos();
    let broken = knowledge.broken();
    let n_targets = known.difference_len(broken);
    let chosen: Vec<NodeId> = if capacity >= n_targets {
        // Congest everything known: ascending iteration, no RNG draws —
        // exactly the old `congestion_targets()` Vec.
        known.difference_iter(broken).collect()
    } else {
        let select = WordSelect::from_words(
            (0..known.words().len()).map(|wi| known.word(wi) & !broken.word(wi)),
        );
        sample_pool(&select, rng, capacity)
    };
    for &node in &chosen {
        if overlay.status(node) == NodeStatus::Good {
            overlay.set_status(node, NodeStatus::Congested);
            outcome.congested.push(node);
            outcome.trace.record(AttackEvent::Congestion {
                node,
                reason: CongestionReason::Targeted,
            });
        }
    }
    // Random spillover over the remaining good *overlay* nodes (the
    // attacker cannot find undisclosed filters). Good = complement of
    // the overlay's bad-set words, masked to the overlay id range; the
    // directory must be built *after* the targeted loop above so it
    // sees those nodes as congested.
    let spare = capacity.saturating_sub(chosen.len());
    if spare > 0 {
        let big_n = overlay.overlay_node_count();
        let full_words = big_n / 64;
        let tail = big_n % 64;
        let bad = overlay.bad_set();
        let select = WordSelect::from_words((0..big_n.div_ceil(64)).map(|wi| {
            let w = !bad.word(wi);
            if wi == full_words && tail > 0 {
                w & ((1u64 << tail) - 1)
            } else {
                w
            }
        }));
        let pool_len = select.count();
        for node in sample_pool(&select, rng, spare.min(pool_len)) {
            overlay.set_status(node, NodeStatus::Congested);
            outcome.congested.push(node);
            outcome.trace.record(AttackEvent::Congestion {
                node,
                reason: CongestionReason::Random,
            });
        }
    }
}

/// Draws `k` distinct members of `select` without replacement, in draw
/// order — the same `gen_range(i..n)` sequence and the same picks as
/// `sample_indices` resolved rank by rank, so either strategy is
/// byte-identical to the `Vec`-based sampler this file used to call.
/// When the draw touches a large fraction of the membership the whole
/// ascending index list is materialized once and partially shuffled in
/// place (no per-pick hashing or rank search); for sparse draws the
/// virtual Fisher–Yates over ranks plus per-rank O(log words) `select`
/// avoids the O(members) materialization.
fn sample_pool<R: Rng + ?Sized>(select: &WordSelect, rng: &mut R, k: usize) -> Vec<NodeId> {
    let n = select.count();
    if k * 16 >= n {
        let mut ids = select.indices();
        (0..k)
            .map(|i| {
                let j = rng.gen_range(i..n);
                ids.swap(i, j);
                NodeId(ids[i])
            })
            .collect()
    } else {
        sample_indices(rng, n, k)
            .into_iter()
            .map(|rank| NodeId(select.select(rank) as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};

    fn overlay(p_b: f64, mapping: MappingDegree, seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(2_000, 90, p_b).unwrap())
            .layers(3)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    #[test]
    fn pure_congestion_attacks_randomly() {
        let mut o = overlay(0.5, MappingDegree::OneTo(2), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome =
            OneBurstAttacker::new(AttackBudget::congestion_only(400)).execute(&mut o, &mut rng);
        assert!(outcome.attempted.is_empty());
        assert!(outcome.broken.is_empty());
        assert_eq!(outcome.total_congested(), 400);
        assert_eq!(o.total_bad(), 400);
        // Filters are never hit by random congestion.
        for &f in o.layer_members(4) {
            assert!(o.is_good(f));
        }
    }

    #[test]
    fn break_in_rate_approaches_p_b() {
        let mut o = overlay(0.3, MappingDegree::OneTo(2), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(2_000, 0)).execute(&mut o, &mut rng);
        assert_eq!(outcome.total_attempts(), 2_000);
        assert!(
            (outcome.break_in_rate() - 0.3).abs() < 0.03,
            "rate {}",
            outcome.break_in_rate()
        );
    }

    #[test]
    fn certain_break_in_discloses_neighbors() {
        let mut o = overlay(1.0, MappingDegree::OneTo(2), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(2_000, 2_000)).execute(&mut o, &mut rng);
        // Every overlay node attempted and broken; every SOS node in
        // layers 2..=3 plus all filters disclosed.
        assert_eq!(outcome.broken.len(), 2_000);
        assert!(!outcome.disclosed.is_empty());
        // All disclosed nodes are SOS (layer ≥ 2) or filters.
        for &d in &outcome.disclosed {
            let layer = o.layer_of(d).expect("disclosed nodes are infrastructure");
            assert!(layer >= 2);
        }
    }

    #[test]
    fn disclosed_nodes_get_congested_first() {
        let mut o = overlay(0.5, MappingDegree::OneTo(3), 7);
        let mut rng = StdRng::seed_from_u64(8);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(500, 1_000)).execute(&mut o, &mut rng);
        // Every disclosed node that was not broken must be bad now.
        for &d in &outcome.disclosed {
            assert!(
                !o.is_good(d),
                "disclosed node {d} survived the congestion phase"
            );
        }
        assert!(outcome.total_congested() <= 1_000);
    }

    #[test]
    fn scarce_congestion_budget_spent_exactly() {
        let mut o = overlay(1.0, MappingDegree::OneToAll, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(1_000, 5)).execute(&mut o, &mut rng);
        assert_eq!(outcome.total_congested(), 5);
    }

    #[test]
    fn broken_nodes_never_congested() {
        let mut o = overlay(0.7, MappingDegree::OneTo(2), 11);
        let mut rng = StdRng::seed_from_u64(12);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(500, 1_900)).execute(&mut o, &mut rng);
        use std::collections::HashSet;
        let broken: HashSet<_> = outcome.broken.iter().collect();
        for c in &outcome.congested {
            assert!(!broken.contains(c), "{c} both broken and congested");
        }
    }

    #[test]
    fn no_node_attempted_twice() {
        let mut o = overlay(0.5, MappingDegree::OneTo(2), 13);
        let mut rng = StdRng::seed_from_u64(14);
        let outcome =
            OneBurstAttacker::new(AttackBudget::new(1_500, 0)).execute(&mut o, &mut rng);
        let mut seen = outcome.attempted.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), outcome.attempted.len());
    }

    /// The scalar Vec-based congestion phase this file shipped before
    /// the word-batched rewrite — kept as the oracle the batched form
    /// must match draw for draw.
    fn congestion_reference<R: Rng + ?Sized>(
        overlay: &mut Overlay,
        knowledge: &AttackerKnowledge,
        capacity: usize,
        rng: &mut R,
        outcome: &mut AttackOutcome,
    ) {
        use sos_math::sampling::sample_from;
        let targets = knowledge.congestion_targets();
        let chosen: Vec<NodeId> = if capacity >= targets.len() {
            targets.clone()
        } else {
            sample_from(rng, &targets, capacity)
        };
        for &node in &chosen {
            if overlay.status(node) == NodeStatus::Good {
                overlay.set_status(node, NodeStatus::Congested);
                outcome.congested.push(node);
                outcome.trace.record(AttackEvent::Congestion {
                    node,
                    reason: CongestionReason::Targeted,
                });
            }
        }
        let spare = capacity.saturating_sub(chosen.len());
        if spare > 0 {
            let pool: Vec<NodeId> = overlay
                .overlay_ids()
                .filter(|&id| overlay.status(id) == NodeStatus::Good)
                .collect();
            let extra = sample_from(rng, &pool, spare.min(pool.len()));
            for node in extra {
                overlay.set_status(node, NodeStatus::Congested);
                outcome.congested.push(node);
                outcome.trace.record(AttackEvent::Congestion {
                    node,
                    reason: CongestionReason::Random,
                });
            }
        }
    }

    #[test]
    fn batched_congestion_matches_scalar_reference_byte_for_byte() {
        use rand::RngCore;
        // Sweep capacities across the subsample / congest-all / spillover
        // regimes, with and without a break-in phase feeding knowledge.
        for (trials, capacity, seed) in [
            (0u64, 150usize, 61u64),
            (400, 10, 62),
            (400, 120, 63),
            (400, 800, 64),
            (1_000, 1_999, 65),
            (2_000, 0, 66),
        ] {
            let run = |batched: bool| {
                let mut o = overlay(0.5, MappingDegree::OneTo(2), seed);
                let mut rng = StdRng::seed_from_u64(seed + 1);
                let mut knowledge = AttackerKnowledge::new();
                let mut outcome = AttackOutcome::default();
                let n_t = trials as usize;
                for node in sample_indices(&mut rng, o.overlay_node_count(), n_t)
                    .into_iter()
                    .map(|i| NodeId(i as u32))
                    .collect::<Vec<_>>()
                {
                    attempt_break_in(&mut o, &mut knowledge, &mut outcome, node, 1, &mut rng);
                }
                if batched {
                    execute_congestion_phase(&mut o, &knowledge, capacity, &mut rng, &mut outcome);
                } else {
                    congestion_reference(&mut o, &knowledge, capacity, &mut rng, &mut outcome);
                }
                let statuses: Vec<NodeStatus> =
                    o.overlay_ids().map(|id| o.status(id)).collect();
                (outcome.congested.clone(), statuses, rng.next_u64())
            };
            assert_eq!(
                run(true),
                run(false),
                "capacity {capacity}, trials {trials}, seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut o = overlay(0.5, MappingDegree::OneTo(2), 20);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome =
                OneBurstAttacker::new(AttackBudget::new(300, 300)).execute(&mut o, &mut rng);
            (outcome.attempted, outcome.broken, outcome.congested)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
