//! Executable intelligent-DDoS attackers.
//!
//! `sos-analysis` computes what happens to the *average* overlay; this
//! crate implements attackers that actually do it to a concrete
//! [`sos_overlay::Overlay`], node by node, with real randomness:
//!
//! * [`knowledge`] — the attacker's evolving view: which nodes it has
//!   attempted, broken into, and learned about from captured neighbor
//!   tables.
//! * [`one_burst`] — §3.1 executed literally: `N_T` uniform break-in
//!   trials in one volley, then congestion of every disclosed node plus
//!   random spillover.
//! * [`successive`] — §3.2 / Algorithm 1 executed literally: round-based
//!   break-ins guided by the previous round's disclosures, seeded by
//!   prior knowledge of the first layer.
//! * [`observe`] — replays an [`trace::AttackTrace`] onto the
//!   `sos-observe` event bus with layer annotations and phase spans.
//!
//! The executable attackers are slightly *stronger* than the paper's
//! algebra in one respect: a node that was randomly attacked (and
//! survived) in round `k` and disclosed in a later round is recognized
//! as a known SOS node and congested; the paper's equations do not track
//! this cross-round overlap. The difference is part of what the
//! analytical-vs-simulation ablation measures.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sos_attack::one_burst::OneBurstAttacker;
//! use sos_core::{AttackBudget, MappingDegree, Scenario, SystemParams};
//! use sos_overlay::Overlay;
//!
//! let scenario = Scenario::builder()
//!     .system(SystemParams::new(1_000, 60, 0.5)?)
//!     .layers(3)
//!     .mapping(MappingDegree::OneTo(2))
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut overlay = Overlay::build(&scenario, &mut rng);
//! let outcome = OneBurstAttacker::new(AttackBudget::new(100, 200))
//!     .execute(&mut overlay, &mut rng);
//! assert_eq!(outcome.attempted.len(), 100);
//! assert!(overlay.total_bad() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod knowledge;
pub mod monitoring;
pub mod observe;
pub mod one_burst;
pub mod outcome;
pub mod successive;
pub mod trace;

pub use knowledge::AttackerKnowledge;
pub use observe::emit_attack_events;
pub use monitoring::{LayeringModel, MonitoringAttacker, MonitoringOutcome};
pub use one_burst::OneBurstAttacker;
pub use outcome::{AttackOutcome, RoundSummary};
pub use successive::SuccessiveAttacker;
pub use trace::{AttackEvent, AttackTrace, CongestionReason};
