//! Bridge from [`AttackTrace`] to the `sos-observe` event bus.
//!
//! Attackers record their own [`AttackEvent`] stream unconditionally
//! (it is cheap and powers the cascade analyses in [`crate::trace`]);
//! this module translates that stream into `sos_observe` events after
//! the fact, annotating each node with its layer and wrapping the two
//! attack phases (break-in, congestion) in phase spans. Translating
//! after the attack keeps the attackers themselves recorder-free — the
//! hot path pays nothing when tracing is off.

use crate::trace::{AttackEvent, AttackTrace, CongestionReason};
use sos_observe::{Event, EventKind, Phase, Recorder};
use sos_overlay::{NodeId, Overlay};

/// The 1-based layer of `node` for event annotation (`0` = the node
/// sits on no layer, i.e. it is a bystander).
fn layer_of(overlay: &Overlay, node: NodeId) -> u32 {
    overlay.layer_of(node).unwrap_or(0) as u32
}

/// Replays `trace` into `recorder` as `sos_observe` events for `trial`,
/// advancing the logical tick `t` once per emitted event.
///
/// The attack's event stream is ordered (all break-in-phase events
/// precede all congestion events by construction), so the translation
/// wraps it in a `break-in` span and — if any congestion slot was
/// spent — a `congestion` span. Callers should skip the call entirely
/// when `recorder.enabled()` is false.
pub fn emit_attack_events(
    trace: &AttackTrace,
    overlay: &Overlay,
    trial: u64,
    t: &mut u64,
    recorder: &dyn Recorder,
) {
    let emit = |t: &mut u64, kind: EventKind| {
        recorder.record(Event::new(*t, trial, kind));
        *t += 1;
    };
    emit(t, EventKind::PhaseStart {
        phase: Phase::BreakIn,
    });
    let mut in_congestion = false;
    for event in trace.events() {
        if !in_congestion && matches!(event, AttackEvent::Congestion { .. }) {
            emit(t, EventKind::PhaseEnd {
                phase: Phase::BreakIn,
            });
            emit(t, EventKind::PhaseStart {
                phase: Phase::Congestion,
            });
            in_congestion = true;
        }
        let kind = match *event {
            AttackEvent::BreakInAttempt {
                node, succeeded, ..
            } => EventKind::BreakInAttempt {
                layer: layer_of(overlay, node),
                node: node.0,
                succeeded,
            },
            AttackEvent::Disclosure {
                source, revealed, ..
            } => EventKind::Disclosure {
                source: source.0,
                revealed: revealed.0,
            },
            AttackEvent::PriorKnowledge { node } => {
                EventKind::PriorKnowledge { node: node.0 }
            }
            AttackEvent::RoundPlan { round, case, known } => EventKind::AttackRound {
                round,
                case,
                known: known as u64,
            },
            AttackEvent::Congestion { node, reason } => EventKind::CongestionOnset {
                node: node.0,
                targeted: reason == CongestionReason::Targeted,
            },
        };
        emit(t, kind);
    }
    let closing = if in_congestion {
        Phase::Congestion
    } else {
        Phase::BreakIn
    };
    emit(t, EventKind::PhaseEnd { phase: closing });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuccessiveAttacker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{AttackBudget, MappingDegree, Scenario, SuccessiveParams, SystemParams};
    use sos_observe::MemoryRecorder;

    fn attacked_overlay() -> (Overlay, AttackTrace) {
        let scenario = Scenario::builder()
            .system(SystemParams::new(1_000, 60, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut overlay = Overlay::build(&scenario, &mut rng);
        let outcome = SuccessiveAttacker::new(
            AttackBudget::new(100, 300),
            SuccessiveParams::new(3, 0.2).unwrap(),
        )
        .execute(&mut overlay, &mut rng);
        (overlay, outcome.trace)
    }

    #[test]
    fn phases_bracket_the_attack() {
        let (overlay, trace) = attacked_overlay();
        let recorder = MemoryRecorder::new();
        let mut t = 0u64;
        emit_attack_events(&trace, &overlay, 7, &mut t, &recorder);
        let events = recorder.take_events();
        assert_eq!(events.len() as u64, t, "one tick per event");
        assert!(events.iter().all(|e| e.trial == 7));
        // Spans: break-in opens first, congestion closes last.
        assert_eq!(
            events.first().unwrap().kind,
            EventKind::PhaseStart {
                phase: Phase::BreakIn
            }
        );
        assert_eq!(
            events.last().unwrap().kind,
            EventKind::PhaseEnd {
                phase: Phase::Congestion
            }
        );
        // Every break-in event lands before every congestion event.
        let first_congestion = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::CongestionOnset { .. }))
            .expect("N_C = 300 must congest something");
        let last_break_in = events
            .iter()
            .rposition(|e| matches!(e.kind, EventKind::BreakInAttempt { .. }))
            .expect("N_T = 100 must attempt break-ins");
        assert!(last_break_in < first_congestion);
        // Algorithm 1 rounds are visible.
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::AttackRound { round: 1, .. })));
    }

    #[test]
    fn layers_annotated_from_overlay() {
        let (overlay, trace) = attacked_overlay();
        let recorder = MemoryRecorder::new();
        let mut t = 0;
        emit_attack_events(&trace, &overlay, 0, &mut t, &recorder);
        for event in recorder.take_events() {
            if let EventKind::BreakInAttempt { layer, node, .. } = event.kind {
                assert_eq!(
                    layer as usize,
                    overlay.layer_of(NodeId(node)).unwrap_or(0),
                    "layer annotation mismatch for node {node}"
                );
            }
        }
    }
}
