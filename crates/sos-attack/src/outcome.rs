//! Attack outcome records.

use crate::trace::AttackTrace;
use sos_overlay::NodeId;

/// Summary of one break-in round (one-burst attacks have exactly one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSummary {
    /// 1-based round number.
    pub round: u32,
    /// Disclosed-unattacked nodes at the start of the round (`X_j`).
    pub known_at_start: usize,
    /// Nodes attacked deterministically (previously disclosed).
    pub attempted_disclosed: usize,
    /// Nodes attacked at random.
    pub attempted_random: usize,
    /// Successful break-ins this round.
    pub broken: usize,
    /// Nodes newly disclosed by this round's break-ins.
    pub newly_disclosed: usize,
}

/// Full record of an executed attack.
#[derive(Debug, Clone, Default)]
pub struct AttackOutcome {
    /// Every node a break-in was attempted on, in attempt order.
    pub attempted: Vec<NodeId>,
    /// Every node broken into.
    pub broken: Vec<NodeId>,
    /// Every node congested.
    pub congested: Vec<NodeId>,
    /// Nodes whose SOS/filter membership the attacker learned.
    pub disclosed: Vec<NodeId>,
    /// Per-round summaries (length 1 for one-burst).
    pub rounds: Vec<RoundSummary>,
    /// Disclosed-but-unattacked nodes left when the break-in budget ran
    /// out (Algorithm 1's `f`); they are congested instead.
    pub leftover_disclosed: usize,
    /// Full event trace (break-ins, disclosures, congestion) for
    /// cascade analysis and export.
    pub trace: AttackTrace,
}

impl AttackOutcome {
    /// Total break-in attempts (`≤ N_T`).
    pub fn total_attempts(&self) -> usize {
        self.attempted.len()
    }

    /// Total congested nodes (`≤ N_C`).
    pub fn total_congested(&self) -> usize {
        self.congested.len()
    }

    /// Empirical break-in success rate.
    pub fn break_in_rate(&self) -> f64 {
        if self.attempted.is_empty() {
            0.0
        } else {
            self.broken.len() as f64 / self.attempted.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_counts() {
        let outcome = AttackOutcome {
            attempted: vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
            broken: vec![NodeId(2)],
            congested: vec![NodeId(9)],
            ..Default::default()
        };
        assert_eq!(outcome.total_attempts(), 4);
        assert_eq!(outcome.total_congested(), 1);
        assert!((outcome.break_in_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_outcome_rate_is_zero() {
        assert_eq!(AttackOutcome::default().break_in_rate(), 0.0);
    }
}
