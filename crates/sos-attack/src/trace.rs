//! Structured attack traces: every break-in, disclosure and congestion
//! as a typed event.
//!
//! The [`AttackOutcome`](crate::AttackOutcome) summarizes *what* was
//! compromised; the trace records *how* — which break-in disclosed
//! which node, in which round, and why each congestion slot was spent.
//! Traces power the cascade analysis below (how deep did one captured
//! SOAP node's disclosure chain reach?) and CSV export for external
//! tooling.

use sos_overlay::NodeId;
use std::collections::HashMap;

/// Why a node was congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionReason {
    /// The attacker knew the node was SOS infrastructure.
    Targeted,
    /// Random spillover of leftover budget.
    Random,
}

/// One event in an attack's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackEvent {
    /// A break-in was attempted (round 0 = prior knowledge phase).
    BreakInAttempt {
        /// 1-based round (one-burst attacks use round 1).
        round: u32,
        /// The attacked node.
        node: NodeId,
        /// Whether the node was captured.
        succeeded: bool,
    },
    /// A captured node's neighbor table (or a traffic tap) revealed a
    /// new piece of infrastructure.
    Disclosure {
        /// Round in which the disclosure happened.
        round: u32,
        /// The captured/monitored node that leaked the information.
        source: NodeId,
        /// The newly known node.
        revealed: NodeId,
    },
    /// Prior knowledge: the attacker knew this node before round 1.
    PriorKnowledge {
        /// The known node.
        node: NodeId,
    },
    /// Algorithm 1 chose its branch for a round: which of the four
    /// cases applied given the disclosed backlog `x`, the round quota
    /// `α` and the remaining budget `β`.
    RoundPlan {
        /// 1-based round number.
        round: u32,
        /// Which case (1–4) of Algorithm 1 applied.
        case: u8,
        /// Disclosed-but-unattacked nodes entering the round (`x`).
        known: u32,
    },
    /// A congestion slot was spent.
    Congestion {
        /// The congested node.
        node: NodeId,
        /// Targeted or random.
        reason: CongestionReason,
    },
}

/// An ordered attack trace with analysis helpers.
#[derive(Debug, Clone, Default)]
pub struct AttackTrace {
    events: Vec<AttackEvent>,
}

impl AttackTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: AttackEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[AttackEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The disclosure parent of each revealed node (who leaked it
    /// first).
    pub fn disclosure_parents(&self) -> HashMap<NodeId, NodeId> {
        let mut parents = HashMap::new();
        for event in &self.events {
            if let AttackEvent::Disclosure {
                source, revealed, ..
            } = event
            {
                parents.entry(*revealed).or_insert(*source);
            }
        }
        parents
    }

    /// Length of the disclosure chain that produced `node` (0 when the
    /// node was attacked blind or known a priori).
    pub fn cascade_depth(&self, node: NodeId) -> usize {
        let parents = self.disclosure_parents();
        let mut depth = 0;
        let mut current = node;
        // Parent chains are acyclic by construction (a node is revealed
        // once, by an earlier capture), but guard against pathological
        // traces anyway.
        while let Some(&parent) = parents.get(&current) {
            depth += 1;
            current = parent;
            if depth > parents.len() {
                break;
            }
        }
        depth
    }

    /// The deepest disclosure cascade in the trace.
    pub fn max_cascade_depth(&self) -> usize {
        self.disclosure_parents()
            .keys()
            .map(|&n| self.cascade_depth(n))
            .max()
            .unwrap_or(0)
    }

    /// Per-round break-in counts `(attempts, captures)`.
    pub fn break_ins_by_round(&self) -> HashMap<u32, (u32, u32)> {
        let mut rounds: HashMap<u32, (u32, u32)> = HashMap::new();
        for event in &self.events {
            if let AttackEvent::BreakInAttempt {
                round, succeeded, ..
            } = event
            {
                let entry = rounds.entry(*round).or_default();
                entry.0 += 1;
                if *succeeded {
                    entry.1 += 1;
                }
            }
        }
        rounds
    }

    /// Congestion split `(targeted, random)`.
    pub fn congestion_split(&self) -> (u32, u32) {
        let mut targeted = 0;
        let mut random = 0;
        for event in &self.events {
            if let AttackEvent::Congestion { reason, .. } = event {
                match reason {
                    CongestionReason::Targeted => targeted += 1,
                    CongestionReason::Random => random += 1,
                }
            }
        }
        (targeted, random)
    }

    /// Serializes the trace as CSV (`event,round,node,aux` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("event,round,node,aux\n");
        for event in &self.events {
            match event {
                AttackEvent::BreakInAttempt {
                    round,
                    node,
                    succeeded,
                } => {
                    out.push_str(&format!("break-in,{round},{},{succeeded}\n", node.0));
                }
                AttackEvent::Disclosure {
                    round,
                    source,
                    revealed,
                } => {
                    out.push_str(&format!(
                        "disclosure,{round},{},{}\n",
                        revealed.0, source.0
                    ));
                }
                AttackEvent::PriorKnowledge { node } => {
                    out.push_str(&format!("prior-knowledge,0,{},\n", node.0));
                }
                AttackEvent::RoundPlan { round, case, known } => {
                    // The node column carries the known-backlog count for
                    // round-plan rows (there is no single node involved).
                    out.push_str(&format!("round-plan,{round},{known},case-{case}\n"));
                }
                AttackEvent::Congestion { node, reason } => {
                    let reason = match reason {
                        CongestionReason::Targeted => "targeted",
                        CongestionReason::Random => "random",
                    };
                    out.push_str(&format!("congestion,,{},{reason}\n", node.0));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AttackTrace {
        let mut t = AttackTrace::new();
        t.record(AttackEvent::PriorKnowledge { node: NodeId(1) });
        t.record(AttackEvent::RoundPlan {
            round: 1,
            case: 1,
            known: 1,
        });
        t.record(AttackEvent::BreakInAttempt {
            round: 1,
            node: NodeId(1),
            succeeded: true,
        });
        t.record(AttackEvent::Disclosure {
            round: 1,
            source: NodeId(1),
            revealed: NodeId(2),
        });
        t.record(AttackEvent::BreakInAttempt {
            round: 2,
            node: NodeId(2),
            succeeded: true,
        });
        t.record(AttackEvent::Disclosure {
            round: 2,
            source: NodeId(2),
            revealed: NodeId(3),
        });
        t.record(AttackEvent::BreakInAttempt {
            round: 2,
            node: NodeId(7),
            succeeded: false,
        });
        t.record(AttackEvent::Congestion {
            node: NodeId(3),
            reason: CongestionReason::Targeted,
        });
        t.record(AttackEvent::Congestion {
            node: NodeId(9),
            reason: CongestionReason::Random,
        });
        t
    }

    #[test]
    fn cascade_depths() {
        let t = sample_trace();
        assert_eq!(t.cascade_depth(NodeId(1)), 0, "prior knowledge is a root");
        assert_eq!(t.cascade_depth(NodeId(2)), 1);
        assert_eq!(t.cascade_depth(NodeId(3)), 2);
        assert_eq!(t.cascade_depth(NodeId(9)), 0, "random victim has no chain");
        assert_eq!(t.max_cascade_depth(), 2);
    }

    #[test]
    fn round_and_congestion_accounting() {
        let t = sample_trace();
        let rounds = t.break_ins_by_round();
        assert_eq!(rounds[&1], (1, 1));
        assert_eq!(rounds[&2], (2, 1));
        assert_eq!(t.congestion_split(), (1, 1));
        assert_eq!(t.len(), 9);
        assert!(!t.is_empty());
    }

    #[test]
    fn first_disclosure_wins() {
        let mut t = sample_trace();
        // A second leak of node 2 from elsewhere must not re-parent it.
        t.record(AttackEvent::Disclosure {
            round: 3,
            source: NodeId(7),
            revealed: NodeId(2),
        });
        assert_eq!(t.disclosure_parents()[&NodeId(2)], NodeId(1));
    }

    #[test]
    fn csv_export_shape() {
        let csv = sample_trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "event,round,node,aux");
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().any(|l| l.starts_with("disclosure,1,2,1")));
        assert!(lines.iter().any(|l| l.starts_with("congestion,,9,random")));
        assert!(lines.contains(&"round-plan,1,1,case-1"));
    }
}
