//! Beyond-the-paper experiments: ablations and extensions from
//! `DESIGN.md`.
//!
//! | id | question |
//! |---|---|
//! | `ablation-evaluator` | how far are the two closed-form evaluators from Monte Carlo ground truth? |
//! | `ablation-routing`   | how much does the analytical independence assumption cost vs backtracking routing? |
//! | `ablation-chord`     | what does the Chord substrate's intermediate-hop exposure cost vs the paper's direct-hop abstraction? |
//! | `ext-repair`         | the paper's future work: `P_S(t)` with dynamic repair under stale vs adaptive attackers |
//! | `ablation-multirole` | the original SOS multi-role assumption vs single-role under growing `N_T` |
//! | `ext-monitoring`     | the §5 traffic-monitoring attacker: `P_S` vs tap probability |
//! | `ext-latency`        | the §5 timely-delivery trade-off: latency–resilience Pareto frontier |
//! | `ext-flow`           | capacity congestion vs the binary congested-is-dead assumption |
//! | `ext-stabilization`  | Chord protocol pointer recovery after mass failure |
//! | `ext-staleness`      | SOS delivery while the Chord ring is still converging after the attack |
//! | `ext-protocol-churn` | Chord lookup correctness under continuous join/leave churn |
//! | `ext-faults`         | benign message loss on top of a fixed attack: how much `P_S` do hop retries buy back? |

use sos_analysis::sweep::{SweepPoint, SweepSeries, SweepTable};
use sos_analysis::MultiRoleAnalysis;
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, PathEvaluator, Scenario, SuccessiveParams,
    SystemParams,
};
use sos_faults::{FaultConfig, RetryPolicy};
use sos_sim::engine::{SimulationConfig, TransportKind};
use sos_sim::repair::{AttackerPersistence, RepairConfig, RepairSimulation};
use sos_sim::routing::RoutingPolicy;
use sos_sim::{compare_models, run_sweep, ComparisonRow};

/// Monte Carlo sizing shared by the ablations.
#[derive(Debug, Clone, Copy)]
pub struct AblationOptions {
    /// Independent attacked overlays per configuration.
    pub trials: u64,
    /// Client messages routed per trial.
    pub routes_per_trial: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for AblationOptions {
    fn default() -> Self {
        AblationOptions {
            trials: 100,
            routes_per_trial: 100,
            seed: 42,
        }
    }
}

impl AblationOptions {
    /// A light sizing for smoke tests and CI.
    pub fn quick() -> Self {
        AblationOptions {
            trials: 30,
            routes_per_trial: 40,
            seed: 42,
        }
    }
}

/// Scaled-down paper scenario used by the Monte Carlo ablations: the
/// same structure at 1/10 of the population so ground-truth sweeps
/// finish quickly (`N = 1000`, `n = 100`, `L = 3`, 10 filters).
pub fn ablation_scenario(mapping: MappingDegree) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5).expect("valid system"))
        .layers(3)
        .mapping(mapping)
        .filters(10)
        .build()
        .expect("valid scenario")
}

/// The 42-point profiling grid: three overlapping ablation-style
/// panels over one small scenario — the shape every figure family has.
///
/// Panels overlap deliberately (panel 2's direct series equals panel
/// 1's random-good series; panel 3's zero-loss series equals both),
/// exactly as real figure families share their baseline points, so the
/// sweep executor's intra-run dedup is exercised. Shared by
/// `bench_baseline`'s sweep workload and `sos profile`'s `grid`
/// workload, so the profiled shape is the benchmarked shape.
pub fn profile_grid(opts: AblationOptions) -> Vec<SimulationConfig> {
    let budgets = [0u64, 40, 80, 120, 160, 200];
    // Chord transport: the substrate every figure family pays the most
    // scratch-construction for, and therefore where per-point cold
    // starts hurt the most.
    let base = |n_c: u64| {
        SimulationConfig::new(
            ablation_scenario(MappingDegree::OneTo(5)),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(60, n_c),
            },
        )
        .transport(TransportKind::Chord)
        .trials(opts.trials)
        .routes_per_trial(opts.routes_per_trial)
        .seed(opts.seed)
    };
    let mut configs = Vec::new();
    for policy in [
        RoutingPolicy::RandomGood,
        RoutingPolicy::FirstGood,
        RoutingPolicy::Backtracking,
    ] {
        for &n_c in &budgets {
            configs.push(base(n_c).policy(policy));
        }
    }
    for transport in [TransportKind::Direct, TransportKind::Chord] {
        for &n_c in &budgets {
            configs.push(base(n_c).transport(transport));
        }
    }
    for loss in [0.0, 0.2] {
        for &n_c in &budgets {
            configs.push(base(n_c).faults(FaultConfig::none().loss(loss).seed(opts.seed)));
        }
    }
    configs
}

/// `ablation-evaluator`: closed-form vs Monte Carlo `P_S` across the
/// Fig. 4(a)-style grid (pure congestion and mixed attacks, three
/// mappings).
pub fn evaluator_ablation(opts: AblationOptions) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for mapping in [
        MappingDegree::ONE_TO_ONE,
        MappingDegree::OneTo(5),
        MappingDegree::OneToHalf,
        MappingDegree::OneToAll,
    ] {
        for (n_t, n_c) in [(0u64, 200u64), (0, 600), (20, 200), (200, 200)] {
            let scenario = ablation_scenario(mapping.clone());
            let label = format!("{mapping} N_T={n_t} N_C={n_c}");
            let row = compare_models(
                label,
                &scenario,
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(n_t, n_c),
                },
                opts.trials,
                opts.routes_per_trial,
                opts.seed,
            )
            .expect("ablation grid is valid");
            rows.push(row);
        }
    }
    rows
}

/// `ablation-routing`: empirical `P_S` vs congestion budget for the
/// three routing policies (random-good = the model's assumption,
/// first-good, backtracking = upper bound).
pub fn routing_ablation(opts: AblationOptions) -> SweepTable {
    let mut table = SweepTable::new("ablation-routing", "N_C", "P_S");
    let budgets = [0u64, 100, 200, 300, 400, 500];
    let policies = [
        RoutingPolicy::RandomGood,
        RoutingPolicy::FirstGood,
        RoutingPolicy::Backtracking,
    ];
    let configs: Vec<SimulationConfig> = policies
        .iter()
        .flat_map(|&policy| {
            budgets.iter().map(move |&n_c| {
                SimulationConfig::new(
                    ablation_scenario(MappingDegree::OneTo(2)),
                    AttackConfig::OneBurst {
                        budget: AttackBudget::new(100, n_c),
                    },
                )
                .policy(policy)
                .trials(opts.trials)
                .routes_per_trial(opts.routes_per_trial)
                .seed(opts.seed)
            })
        })
        .collect();
    let results = run_sweep(&configs);
    for (policy, chunk) in policies.iter().zip(results.chunks(budgets.len())) {
        table.push(SweepSeries {
            label: policy.to_string(),
            points: budgets
                .iter()
                .zip(chunk)
                .map(|(&n_c, result)| SweepPoint {
                    x: n_c as f64,
                    y: result.success_rate(),
                })
                .collect(),
        });
    }
    table
}

/// `ablation-chord`: direct-hop abstraction vs Chord-routed hops, with
/// the same overlays and attacks (paired seeds).
pub fn chord_ablation(opts: AblationOptions) -> SweepTable {
    let mut table = SweepTable::new("ablation-chord", "N_C", "P_S");
    let budgets = [0u64, 100, 200, 300, 400];
    let transports = [TransportKind::Direct, TransportKind::Chord];
    let configs: Vec<SimulationConfig> = transports
        .iter()
        .flat_map(|&transport| {
            budgets.iter().map(move |&n_c| {
                SimulationConfig::new(
                    ablation_scenario(MappingDegree::OneTo(2)),
                    AttackConfig::OneBurst {
                        budget: AttackBudget::new(0, n_c),
                    },
                )
                .transport(transport)
                .trials(opts.trials)
                .routes_per_trial(opts.routes_per_trial)
                .seed(opts.seed)
            })
        })
        .collect();
    let results = run_sweep(&configs);
    for (transport, chunk) in transports.iter().zip(results.chunks(budgets.len())) {
        table.push(SweepSeries {
            label: transport.label().to_string(),
            points: budgets
                .iter()
                .zip(chunk)
                .map(|(&n_c, result)| SweepPoint {
                    x: n_c as f64,
                    y: result.success_rate(),
                })
                .collect(),
        });
    }
    table
}

/// `ext-repair`: `P_S(t)` over repair steps for stale vs adaptive
/// attackers (the paper's named future work).
pub fn repair_extension(opts: AblationOptions) -> SweepTable {
    let mut table = SweepTable::new("ext-repair", "t", "P_S");
    for persistence in [AttackerPersistence::Stale, AttackerPersistence::Adaptive] {
        let sim = RepairSimulation::new(
            ablation_scenario(MappingDegree::OneTo(2)),
            AttackConfig::Successive {
                budget: AttackBudget::new(100, 300),
                params: SuccessiveParams::paper_default(),
            },
            RepairConfig::new(15, 12, persistence),
            opts.trials.min(40),
            opts.routes_per_trial,
            opts.seed,
        );
        let timeline = sim.run();
        table.push(SweepSeries {
            label: persistence.label().to_string(),
            points: timeline
                .steps
                .iter()
                .map(|s| SweepPoint {
                    x: s.step as f64,
                    y: s.ps,
                })
                .collect(),
        });
    }
    table
}

/// The loss rates swept by [`fault_sweep`].
pub const FAULT_SWEEP_LOSS_RATES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];

/// `ext-faults`: empirical `P_S` vs benign per-hop loss rate at a fixed
/// mixed attack budget, with and without hop retries.
///
/// Expected shape: both series are non-increasing in the loss rate
/// (benign faults only remove paths), the `retry` series dominates the
/// `no-retry` series at every positive rate (losses are transient, so
/// re-attempts recover them), and both meet at `x = 0` bit-identically
/// (a zero-fault config never builds a fault plan).
pub fn fault_sweep(opts: AblationOptions) -> SweepTable {
    let mut table = SweepTable::new("ext-faults", "loss_rate", "P_S");
    let policies = [
        ("no-retry", RetryPolicy::none()),
        ("retry(4)", RetryPolicy::new(4, 1, 64)),
    ];
    let configs: Vec<SimulationConfig> = policies
        .iter()
        .flat_map(|&(_, retry)| {
            FAULT_SWEEP_LOSS_RATES.iter().map(move |&loss| {
                SimulationConfig::new(
                    ablation_scenario(MappingDegree::OneTo(2)),
                    AttackConfig::OneBurst {
                        budget: AttackBudget::new(50, 200),
                    },
                )
                .faults(FaultConfig::none().loss(loss).seed(opts.seed))
                .retry(retry)
                .trials(opts.trials)
                .routes_per_trial(opts.routes_per_trial)
                .seed(opts.seed)
            })
        })
        .collect();
    let results = run_sweep(&configs);
    for ((label, _), chunk) in policies
        .iter()
        .zip(results.chunks(FAULT_SWEEP_LOSS_RATES.len()))
    {
        table.push(SweepSeries {
            label: label.to_string(),
            points: FAULT_SWEEP_LOSS_RATES
                .iter()
                .zip(chunk)
                .map(|(&loss, result)| SweepPoint {
                    x: loss,
                    y: result.success_rate(),
                })
                .collect(),
        });
    }
    table
}

/// `ablation-multirole`: the original SOS multi-role assumption vs the
/// generalized single-role architecture as the break-in budget grows
/// (closed forms; no Monte Carlo needed).
pub fn multirole_ablation() -> SweepTable {
    let mut table = SweepTable::new("ablation-multirole", "N_T", "P_S");
    let system = SystemParams::paper_default();
    let grid: Vec<u64> = (0..=10).map(|i| i * 200).collect();

    let mr = MultiRoleAnalysis::new(system, 10).expect("valid baseline");
    table.push(SweepSeries {
        label: "multi-role one-to-all".to_string(),
        points: grid
            .iter()
            .map(|&n_t| SweepPoint {
                x: n_t as f64,
                y: mr
                    .success_probability(
                        AttackBudget::new(n_t, 2_000),
                        PathEvaluator::Binomial,
                    )
                    .expect("grid within overlay size")
                    .value(),
            })
            .collect(),
    });

    for mapping in [MappingDegree::OneToAll, MappingDegree::OneTo(2)] {
        let scenario = Scenario::builder()
            .system(system)
            .layers(3)
            .mapping(mapping.clone())
            .filters(10)
            .build()
            .expect("valid scenario");
        let points = grid
            .iter()
            .map(|&n_t| {
                let ps = sos_analysis::OneBurstAnalysis::new(
                    &scenario,
                    AttackBudget::new(n_t, 2_000),
                )
                .expect("grid within overlay size")
                .run()
                .success_probability(PathEvaluator::Binomial)
                .value();
                SweepPoint {
                    x: n_t as f64,
                    y: ps,
                }
            })
            .collect();
        table.push(SweepSeries {
            label: format!("single-role {mapping}"),
            points,
        });
    }
    table
}

/// `ext-monitoring`: the §5 traffic-monitoring attacker vs the base
/// successive attacker, across tap probabilities (Monte Carlo).
pub fn monitoring_extension(opts: AblationOptions) -> SweepTable {
    let mut table = SweepTable::new("ext-monitoring", "tap_probability", "P_S");
    let attack = AttackConfig::Successive {
        budget: AttackBudget::new(100, 300),
        params: SuccessiveParams::paper_default(),
    };
    let taps = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let configs: Vec<SimulationConfig> = taps
        .iter()
        .map(|&tap| {
            let cfg = SimulationConfig::new(
                ablation_scenario(MappingDegree::OneTo(2)),
                attack,
            )
            .trials(opts.trials)
            .routes_per_trial(opts.routes_per_trial)
            .seed(opts.seed);
            if tap > 0.0 {
                cfg.monitoring_tap(tap)
            } else {
                cfg
            }
        })
        .collect();
    let results = run_sweep(&configs);
    table.push(SweepSeries {
        label: "monitoring successive".to_string(),
        points: taps
            .iter()
            .zip(&results)
            .map(|(&tap, result)| SweepPoint {
                x: tap,
                y: result.success_rate(),
            })
            .collect(),
    });
    table
}

/// `ext-latency`: the latency–resilience Pareto frontier (§5 "timely
/// delivery" open issue), closed forms only.
pub fn latency_frontier() -> Vec<sos_analysis::DesignPoint> {
    sos_analysis::latency_resilience_frontier(
        SystemParams::paper_default(),
        sos_core::NodeDistribution::Even,
        AttackBudget::paper_default(),
        SuccessiveParams::paper_default(),
        sos_analysis::LatencyModel {
            per_hop_mean: 1.0,
            chord_transport: false,
            discipline: sos_analysis::ForwardingDiscipline::DelayAware,
        },
        1..=8,
        &MappingDegree::paper_named_set(),
    )
    .expect("paper grid is valid")
}

/// `ext-flow`: delivery probability as a function of per-slot attack
/// load (capacity model), with the binary model as the crushing-load
/// limit.
pub fn flow_extension(opts: AblationOptions) -> SweepTable {
    use sos_sim::{FlowModel, FlowSimulation};
    let mut table = SweepTable::new("ext-flow", "load_per_slot_over_capacity", "P_S");
    let attack = AttackConfig::OneBurst {
        budget: AttackBudget::new(50, 300),
    };
    let capacity = 100.0;
    let mut points = Vec::new();
    for ratio in [0.1, 0.3, 1.0, 3.0, 10.0, 100.0, 1e6] {
        let result = FlowSimulation::new(
            ablation_scenario(MappingDegree::OneTo(2)),
            attack,
            FlowModel::new(capacity, capacity * ratio),
            opts.trials,
            opts.routes_per_trial,
            opts.seed,
        )
        .run();
        points.push(SweepPoint {
            x: ratio,
            y: result.delivery_rate(),
        });
    }
    table.push(SweepSeries {
        label: "flow model".to_string(),
        points,
    });
    // Binary reference line (same value at every x).
    let binary = run_sweep(&[SimulationConfig::new(
        ablation_scenario(MappingDegree::OneTo(2)),
        attack,
    )
    .trials(opts.trials)
    .routes_per_trial(opts.routes_per_trial)
    .seed(opts.seed)])
    .remove(0);
    table.push(SweepSeries {
        label: "binary model".to_string(),
        points: [0.1, 0.3, 1.0, 3.0, 10.0, 100.0, 1e6]
            .iter()
            .map(|&x| SweepPoint {
                x,
                y: binary.success_rate(),
            })
            .collect(),
    });
    table
}

/// `ext-stabilization`: Chord-protocol recovery after mass failure —
/// strict-convergence fraction vs maintenance time, for several failure
/// fractions.
pub fn stabilization_extension() -> SweepTable {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sos_des::Scheduler;
    use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
    use sos_overlay::NodeId;

    let mut table = SweepTable::new("ext-stabilization", "t", "converged_fraction");
    for kill_fraction in [0.1f64, 0.25, 0.4] {
        let mut rng = StdRng::seed_from_u64(2004);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        // Build a 128-node ring and converge it.
        let mut ids = Vec::new();
        for i in 0..128u32 {
            let mut id = rng.gen::<u64>();
            while ids.contains(&id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, NodeId(i), &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i as usize)];
                proto.join(id, NodeId(i), via, &mut sched);
                let now = sched.now();
                run_maintenance(&mut proto, &mut sched, now + 30);
            }
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 2_000);
        // Kill a fraction and watch recovery.
        let kills = (128.0 * kill_fraction) as usize;
        for &id in ids.iter().take(kills) {
            proto.kill(id);
        }
        let mut points = vec![SweepPoint {
            x: 0.0,
            y: proto.convergence_fraction(),
        }];
        let start = sched.now();
        for step in 1..=20u64 {
            run_maintenance(&mut proto, &mut sched, start + step * 20);
            points.push(SweepPoint {
                x: (step * 20) as f64,
                y: proto.convergence_fraction(),
            });
        }
        table.push(SweepSeries {
            label: format!("kill={kill_fraction}"),
            points,
        });
    }
    table
}

/// `ext-staleness`: SOS delivery over the Chord *protocol* while the
/// ring digests the attack — the regime the oracle-ring transport
/// cannot show. The attack congests/breaks nodes, the same nodes die on
/// the ring, and `P_S` is measured at increasing maintenance times;
/// a short successor list (3) makes pointer staleness bite.
pub fn staleness_extension() -> SweepTable {
    staleness_extension_with_trials(20)
}

/// [`staleness_extension`] with an explicit trial count (smaller for
/// smoke tests).
pub fn staleness_extension_with_trials(trials: u64) -> SweepTable {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sos_attack::OneBurstAttacker;
    use sos_des::Scheduler;
    use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
    use sos_overlay::{NodeId, Overlay, Transport};
    use sos_faults::RetryPolicy;
    use sos_sim::routing::{route_message_into, RouteScratch, RoutingPolicy};

    let mut table = SweepTable::new("ext-staleness", "t", "P_S");
    let scenario = Scenario::builder()
        .system(SystemParams::new(400, 60, 0.5).expect("valid"))
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .expect("valid");
    assert!(trials > 0, "at least one trial");
    let measure_points: Vec<u64> = (0..=10).map(|i| i * 10).collect();
    let mut protocol_ps: Vec<f64> = vec![0.0; measure_points.len()];
    let mut direct_ps = 0.0f64;
    let mut scratch = RouteScratch::new();
    let retry = RetryPolicy::none();

    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(7_000 + trial);
        let mut overlay = Overlay::build(&scenario, &mut rng);

        // Converge a protocol ring over all overlay nodes (short
        // successor lists so staleness is visible).
        let cfg = ProtocolConfig {
            successor_list_len: 3,
            ..ProtocolConfig::default()
        };
        let mut proto = ChordProtocol::new(cfg);
        let mut sched = Scheduler::new();
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let mut ids: Vec<u64> = Vec::with_capacity(members.len());
        for (i, &m) in members.iter().enumerate() {
            let mut id = rng.gen::<u64>();
            while ids.contains(&id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, m, &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i)];
                proto.join(id, m, via, &mut sched);
                if i % 8 == 0 {
                    let now = sched.now();
                    run_maintenance(&mut proto, &mut sched, now + 25);
                }
            }
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 3_000);

        // Attack lands: overlay statuses change and the same nodes die
        // on the ring (a congested node cannot serve Chord either).
        OneBurstAttacker::new(AttackBudget::new(40, 160)).execute(&mut overlay, &mut rng);
        proto.sync_overlay_damage(&overlay);

        // Reference: the paper's direct-hop abstraction on the same
        // damaged overlay.
        let mut hits = 0u32;
        for _ in 0..100 {
            if route_message_into(
                &overlay,
                &Transport::Direct,
                RoutingPolicy::RandomGood,
                None,
                &retry,
                &mut rng,
                &mut scratch,
            )
            .delivered
            {
                hits += 1;
            }
        }
        direct_ps += hits as f64 / 100.0;

        // Protocol transport at increasing maintenance times.
        let attack_time = sched.now();
        for (idx, &t) in measure_points.iter().enumerate() {
            run_maintenance(&mut proto, &mut sched, attack_time + t);
            let transport = Transport::Protocol(proto.clone());
            let mut hits = 0u32;
            for _ in 0..100 {
                if route_message_into(
                    &overlay,
                    &transport,
                    RoutingPolicy::RandomGood,
                    None,
                    &retry,
                    &mut rng,
                    &mut scratch,
                )
                .delivered
                {
                    hits += 1;
                }
            }
            protocol_ps[idx] += hits as f64 / 100.0;
        }
    }

    table.push(SweepSeries {
        label: "protocol (converging)".to_string(),
        points: measure_points
            .iter()
            .zip(&protocol_ps)
            .map(|(&t, &p)| SweepPoint {
                x: t as f64,
                y: p / trials as f64,
            })
            .collect(),
    });
    table.push(SweepSeries {
        label: "direct (reference)".to_string(),
        points: measure_points
            .iter()
            .map(|&t| SweepPoint {
                x: t as f64,
                y: direct_ps / trials as f64,
            })
            .collect(),
    });
    table
}

/// `ext-protocol-churn`: the classic Chord churn evaluation — lookup
/// correctness as a function of the churn interval (one leave + one
/// join every `interval` ticks against a 10-tick stabilize period).
/// Correctness degrades as churn outpaces maintenance.
pub fn protocol_churn_extension() -> SweepTable {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sos_des::Scheduler;
    use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
    use sos_overlay::NodeId;

    let mut table = SweepTable::new("ext-protocol-churn", "churn_interval", "lookup_correct");
    let mut points = Vec::new();
    for interval in [2u64, 5, 10, 20, 40, 80] {
        let mut rng = StdRng::seed_from_u64(2001);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        let mut alive_ids: Vec<u64> = Vec::new();
        let mut next_node = 0u32;
        let mut used = std::collections::HashSet::new();
        // Build a converged 96-node ring.
        for i in 0..96usize {
            let mut id = rng.gen::<u64>();
            while !used.insert(id) {
                id = rng.gen::<u64>();
            }
            alive_ids.push(id);
            if i == 0 {
                proto.bootstrap(id, NodeId(next_node), &mut sched);
            } else {
                let via = alive_ids[rng.gen_range(0..i)];
                proto.join(id, NodeId(next_node), via, &mut sched);
                if i % 8 == 0 {
                    let now = sched.now();
                    run_maintenance(&mut proto, &mut sched, now + 25);
                }
            }
            next_node += 1;
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 3_000);

        // Churn for 150 events, sampling lookups continuously.
        let mut correct = 0u32;
        let mut total = 0u32;
        for _ in 0..150 {
            // One leave…
            let victim_idx = rng.gen_range(0..alive_ids.len());
            let victim = alive_ids.swap_remove(victim_idx);
            proto.kill(victim);
            // …and one join via a random alive bootstrap.
            let mut id = rng.gen::<u64>();
            while !used.insert(id) {
                id = rng.gen::<u64>();
            }
            let via = alive_ids[rng.gen_range(0..alive_ids.len())];
            proto.join(id, NodeId(next_node), via, &mut sched);
            next_node += 1;
            alive_ids.push(id);
            // Maintenance runs for one churn interval.
            let now = sched.now();
            run_maintenance(&mut proto, &mut sched, now + interval);
            // Sample lookups against the oracle.
            for _ in 0..4 {
                let key = rng.gen::<u64>();
                let from = alive_ids[rng.gen_range(0..alive_ids.len())];
                total += 1;
                if proto.lookup(from, key) == proto.oracle_successor(key) {
                    correct += 1;
                }
            }
        }
        points.push(SweepPoint {
            x: interval as f64,
            y: correct as f64 / total as f64,
        });
    }
    table.push(SweepSeries {
        label: "one leave + one join per interval".to_string(),
        points,
    });
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_math::series::{trend, Trend};

    #[test]
    fn evaluator_ablation_binomial_tracks_simulation() {
        let rows = evaluator_ablation(AblationOptions::quick());
        assert_eq!(rows.len(), 16);
        // For one-to-one the binomial model should be close to ground
        // truth in every attack configuration.
        for row in rows.iter().filter(|r| r.label.starts_with("one-to-one")) {
            assert!(
                row.binomial_gap() < 0.12,
                "binomial gap too large for {}: {row}",
                row.label
            );
        }
    }

    #[test]
    fn routing_ablation_backtracking_dominates() {
        let t = routing_ablation(AblationOptions::quick());
        let random = t.series_by_label("random-good").unwrap();
        let backtrack = t.series_by_label("backtracking").unwrap();
        for (r, b) in random.points.iter().zip(&backtrack.points) {
            assert!(
                b.y >= r.y - 0.03,
                "backtracking below random-good at N_C={}",
                r.x
            );
        }
    }

    #[test]
    fn chord_ablation_direct_dominates() {
        let t = chord_ablation(AblationOptions::quick());
        let direct = t.series_by_label("direct").unwrap();
        let chord = t.series_by_label("chord").unwrap();
        for (d, c) in direct.points.iter().zip(&chord.points) {
            assert!(
                c.y <= d.y + 0.05,
                "chord above direct at N_C={}: {} vs {}",
                d.x,
                c.y,
                d.y
            );
        }
    }

    #[test]
    fn repair_extension_stale_recovers() {
        let t = repair_extension(AblationOptions::quick());
        let stale = t.series_by_label("stale").unwrap();
        let adaptive = t.series_by_label("adaptive").unwrap();
        assert!(stale.points.last().unwrap().y >= adaptive.points.last().unwrap().y);
        // Stale recovery is (weakly) upward after the initial hit.
        let ys = stale.ys();
        assert_ne!(trend(&ys, 0.02), Trend::NonIncreasing, "{ys:?}");
    }

    #[test]
    fn monitoring_extension_reduces_ps() {
        let t = monitoring_extension(AblationOptions::quick());
        let s = t.series_by_label("monitoring successive").unwrap();
        let first = s.points.first().unwrap().y;
        let last = s.points.last().unwrap().y;
        assert!(
            last < first,
            "full taps should hurt more than no taps: {last} vs {first}"
        );
    }

    #[test]
    fn latency_frontier_has_pareto_points() {
        let points = latency_frontier();
        assert_eq!(points.len(), 40, "8 layer counts x 5 mappings");
        let pareto = points.iter().filter(|p| p.pareto_optimal).count();
        assert!(pareto > 0 && pareto < points.len());
    }

    #[test]
    fn flow_extension_interpolates_to_binary() {
        // The flow and binary engines use independent trial RNG streams,
        // so the comparison is unpaired — use enough trials to shrink
        // the Monte Carlo noise below the asserted tolerance.
        let t = flow_extension(AblationOptions {
            trials: 120,
            routes_per_trial: 60,
            seed: 42,
        });
        let flow = t.series_by_label("flow model").unwrap();
        let binary = t.series_by_label("binary model").unwrap();
        // Light load: flow is more optimistic than binary.
        assert!(flow.points[0].y > binary.points[0].y);
        // Crushing load: flow approaches binary.
        let last = flow.points.last().unwrap().y;
        let bin = binary.points[0].y;
        assert!((last - bin).abs() < 0.08, "flow {last} vs binary {bin}");
        // Monotone non-increasing in load.
        assert_eq!(
            sos_math::series::trend(&flow.ys(), 0.02),
            sos_math::series::Trend::NonIncreasing
        );
    }

    #[test]
    fn stabilization_recovers_to_full_convergence() {
        let t = stabilization_extension();
        for s in &t.series {
            let first = s.points.first().unwrap().y;
            let last = s.points.last().unwrap().y;
            assert!(first < 1.0, "{}: failures must break pointers", s.label);
            assert_eq!(last, 1.0, "{}: ring must fully recover", s.label);
        }
        // Heavier failures start from worse convergence.
        let light = t.series_by_label("kill=0.1").unwrap().points[0].y;
        let heavy = t.series_by_label("kill=0.4").unwrap().points[0].y;
        assert!(heavy < light);
    }

    #[test]
    fn staleness_recovers_toward_direct_reference() {
        let t = staleness_extension_with_trials(8);
        let proto = t.series_by_label("protocol (converging)").unwrap();
        let direct = t.series_by_label("direct (reference)").unwrap();
        let stale = proto.points.first().unwrap().y;
        let healed = proto.points.last().unwrap().y;
        let reference = direct.points[0].y;
        assert!(
            stale < reference - 0.02,
            "staleness must cost something: {stale} vs {reference}"
        );
        assert!(
            healed > stale,
            "maintenance must recover delivery: {healed} vs {stale}"
        );
        // 8 trials leaves ~±0.05 of Monte Carlo noise on both
        // estimates; 0.08 keeps "tracks the reference" distinguishable
        // from the stale gap asserted above without a flaky margin.
        assert!(
            (healed - reference).abs() < 0.08,
            "healed ring should track the direct reference: {healed} vs {reference}"
        );
    }

    #[test]
    fn fault_sweep_retries_dominate_and_loss_hurts() {
        let t = fault_sweep(AblationOptions::quick());
        let bare = t.series_by_label("no-retry").unwrap();
        let retried = t.series_by_label("retry(4)").unwrap();
        assert_eq!(bare.points.len(), FAULT_SWEEP_LOSS_RATES.len());
        // Zero-fault anchor: both series skip the fault plane entirely
        // and land on the same bits.
        assert_eq!(bare.points[0].y, retried.points[0].y);
        // Retries dominate strictly at every positive loss rate.
        for (b, r) in bare.points.iter().zip(&retried.points).skip(1) {
            assert!(
                r.y > b.y,
                "retries must improve P_S at loss={}: {} vs {}",
                b.x,
                r.y,
                b.y
            );
        }
        // Benign loss only removes paths: P_S never rises with the loss
        // rate. The bare series must visibly decline; the retried one
        // may also stay flat within tolerance — four retries can mask
        // the quick grid's low loss rates almost completely.
        assert_eq!(trend(&bare.ys(), 0.02), Trend::NonIncreasing, "{:?}", bare.ys());
        let retried_trend = trend(&retried.ys(), 0.02);
        assert!(
            matches!(retried_trend, Trend::NonIncreasing | Trend::Flat),
            "{retried_trend:?}: {:?}",
            retried.ys()
        );
        // Retries never recover compromises: the retried series stays
        // below the zero-fault anchor.
        for r in &retried.points[1..] {
            assert!(r.y <= retried.points[0].y + 1e-12);
        }
    }

    #[test]
    fn protocol_churn_correctness_improves_with_slower_churn() {
        let t = protocol_churn_extension();
        let s = t.series_by_label("one leave + one join per interval").unwrap();
        let ys = s.ys();
        // Fast churn (interval 2 vs stabilize period 10) breaks lookups;
        // slow churn is near-perfect.
        assert!(ys[0] < 0.8, "interval-2 churn should hurt: {ys:?}");
        assert!(*ys.last().unwrap() > 0.97, "slow churn should be near-perfect");
        assert_eq!(
            sos_math::series::trend(&ys, 0.02),
            sos_math::series::Trend::NonDecreasing,
            "{ys:?}"
        );
    }

    #[test]
    fn multirole_collapses_fastest() {
        let t = multirole_ablation();
        let multi = t.series_by_label("multi-role one-to-all").unwrap();
        let single2 = t.series_by_label("single-role one-to-2").unwrap();
        // At the heaviest break-in budget the multi-role design is dead
        // while one-to-two retains some service.
        let last_multi = multi.points.last().unwrap().y;
        let last_single = single2.points.last().unwrap().y;
        assert!(last_multi < 0.01, "multi-role survived: {last_multi}");
        assert!(last_single > last_multi);
    }
}
