//! Prints the routing-policy ablation.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ablation_routing
//! ```

use sos_bench::ablations::{routing_ablation, AblationOptions};

fn main() {
    print!("{}", routing_ablation(AblationOptions::default()));
}
