//! Prints Chord-protocol recovery curves after mass failure.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_stabilization
//! ```

use sos_bench::ablations::stabilization_extension;

fn main() {
    print!("{}", stabilization_extension());
}
