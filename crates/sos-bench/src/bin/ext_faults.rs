//! Prints the fault-plane extension (`P_S` vs benign loss rate at a
//! fixed attack budget, with and without hop retries).
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_faults [-- --quick]
//! ```
//!
//! `--quick` uses the CI sizing (fewer trials); the output is still
//! fully deterministic, which the CI replay job exploits by running it
//! twice and diffing.

use sos_bench::ablations::{fault_sweep, AblationOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        AblationOptions::quick()
    } else {
        AblationOptions::default()
    };
    print!("{}", fault_sweep(opts));
}
