//! Prints the fig8a series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig8a
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig8a());
}
