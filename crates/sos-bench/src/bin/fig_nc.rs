//! Prints the supplemental P_S-vs-N_C analysis the paper defers to its
//! technical report.
//!
//! ```text
//! cargo run -p sos-bench --bin fig_nc
//! ```

fn main() {
    print!("{}", sos_bench::figures::supplemental_nc());
}
