//! Prints the fig6a series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig6a
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig6a());
}
