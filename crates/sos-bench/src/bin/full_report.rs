//! Regenerates the complete experiment suite into a directory:
//! every paper figure, every ablation/extension, and the sensitivity
//! tornado, as CSV files plus a JSON manifest.
//!
//! ```text
//! cargo run --release -p sos-bench --bin full_report [-- <output-dir>] [--cache <file>]
//! ```
//!
//! Defaults to `./data`. Monte Carlo experiments use the default
//! ablation sizing (100 trials × 100 routes, seed 42), so the whole
//! run finishes in a few minutes and is reproducible bit for bit. All
//! Monte Carlo sweeps go through `sos_sim::run_sweep`; with `--cache`
//! (or `SOS_SWEEP_CACHE`) pointing at a persistent cache file, a re-run
//! after an analytic-only change reuses every simulated point and the
//! CSVs stay byte-identical.

use sos_bench::ablations::{self, AblationOptions};
use sos_bench::figures;
use sos_sim::ComparisonRow;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dir: PathBuf = PathBuf::from("data");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--cache" {
            let path = args
                .next()
                .ok_or("--cache expects a file path")?;
            let loaded = sos_sim::set_global_cache(&path)?;
            eprintln!("sweep cache {path}: {loaded} entries loaded");
        } else if let Some(path) = arg.strip_prefix("--cache=") {
            let loaded = sos_sim::set_global_cache(path)?;
            eprintln!("sweep cache {path}: {loaded} entries loaded");
        } else {
            dir = arg.into();
        }
    }
    fs::create_dir_all(&dir)?;
    // Live telemetry for the whole suite: the manifest embeds the
    // per-phase profile so every report records where its wall-clock
    // went. Telemetry observes but never steers — the CSVs stay
    // byte-identical with it on or off.
    sos_observe::telemetry::set_enabled(true);
    let opts = AblationOptions::default();
    let mut written: Vec<String> = Vec::new();

    // Paper figures.
    for table in figures::all() {
        let name = format!("{}.csv", table.title);
        fs::write(dir.join(&name), table.to_string())?;
        written.push(name);
    }
    fs::write(
        dir.join("fig4a-exact.csv"),
        figures::fig4a_exact().to_string(),
    )?;
    written.push("fig4a-exact.csv".to_string());
    fs::write(dir.join("fig-nc.csv"), figures::supplemental_nc().to_string())?;
    written.push("fig-nc.csv".to_string());

    // Machine-readable bundle of every figure (same data as the CSVs).
    let mut all_tables = figures::all();
    all_tables.push(figures::fig4a_exact());
    fs::write(
        dir.join("figures.json"),
        serde_json::to_string_pretty(&all_tables)?,
    )?;
    written.push("figures.json".to_string());

    // Ablations and extensions.
    let evaluator_rows = ablations::evaluator_ablation(opts);
    let mut csv = String::from("# ablation-evaluator\n");
    csv.push_str(ComparisonRow::CSV_HEADER);
    csv.push('\n');
    for row in &evaluator_rows {
        csv.push_str(&row.to_string());
        csv.push('\n');
    }
    fs::write(dir.join("ablation-evaluator.csv"), csv)?;
    written.push("ablation-evaluator.csv".to_string());

    for (name, table) in [
        ("ablation-routing", ablations::routing_ablation(opts)),
        ("ablation-chord", ablations::chord_ablation(opts)),
        ("ablation-multirole", ablations::multirole_ablation()),
        ("ext-repair", ablations::repair_extension(opts)),
        ("ext-monitoring", ablations::monitoring_extension(opts)),
        ("ext-faults", ablations::fault_sweep(opts)),
        ("ext-flow", ablations::flow_extension(opts)),
        ("ext-stabilization", ablations::stabilization_extension()),
        ("ext-staleness", ablations::staleness_extension()),
        ("ext-protocol-churn", ablations::protocol_churn_extension()),
    ] {
        let file = format!("{name}.csv");
        fs::write(dir.join(&file), table.to_string())?;
        written.push(file);
        eprintln!("wrote {name}");
    }

    // Latency frontier.
    {
        let mut csv = String::from("# ext-latency\ndesign,P_S,latency,pareto\n");
        for p in ablations::latency_frontier() {
            csv.push_str(&p.to_string());
            csv.push('\n');
        }
        fs::write(dir.join("ext-latency.csv"), csv)?;
        written.push("ext-latency.csv".to_string());
    }

    // Sensitivity tornado.
    {
        use sos_analysis::{tornado, OperatingPoint};
        use sos_core::PathEvaluator;
        let point = OperatingPoint::paper_default();
        let base = point.price(PathEvaluator::Binomial)?;
        let mut csv = format!("# sensitivity\n# base P_S: {base:.6}\nparameter,ps_low,ps_high,swing\n");
        for e in tornado(&point, 0.25, PathEvaluator::Binomial)? {
            csv.push_str(&e.to_string());
            csv.push('\n');
        }
        fs::write(dir.join("sensitivity.csv"), csv)?;
        written.push("sensitivity.csv".to_string());
    }

    // Observability artifacts: a traced run of the paper's intelligent
    // attacker, exported through the standard sinks so the report
    // bundle carries a replayable event log alongside the aggregates.
    {
        use sos_core::{MappingDegree, Scenario, SystemParams, ThreatPreset};
        use sos_observe::MemoryRecorder;
        use sos_sim::engine::{Simulation, SimulationConfig};
        let preset = ThreatPreset::PaperIntelligent;
        let system = SystemParams::new(10_000, 100, 0.5)?;
        let scenario = Scenario::builder()
            .system(system)
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()?;
        let cfg = SimulationConfig::new(scenario, preset.attack(&system))
            .trials(5)
            .routes_per_trial(opts.routes_per_trial)
            .seed(opts.seed);
        let recorder = MemoryRecorder::new();
        let (_, metrics) = Simulation::new(cfg).run_traced(&recorder);
        let events = recorder.take_events();
        fs::write(dir.join("trace-paper-intelligent.jsonl"), sos_observe::write_jsonl(&events))?;
        written.push("trace-paper-intelligent.jsonl".to_string());
        fs::write(dir.join("metrics-paper-intelligent.csv"), metrics.to_csv())?;
        written.push("metrics-paper-intelligent.csv".to_string());
        eprintln!("wrote trace-paper-intelligent ({} events)", events.len());
    }

    // Manifest, including how much work the sweep executor actually
    // did vs answered from its cache/dedup layers.
    let sweep = sos_sim::sweep_stats();
    eprintln!(
        "sweep executor: {} points ({} executed, {} cache hits, {} dedup hits), {} trials run",
        sweep.points,
        sweep.points_executed,
        sweep.cache_hits,
        sweep.dedup_hits,
        sweep.trials_executed,
    );
    let manifest = serde_json::json!({
        "suite": "sos-resilience full report",
        "paper": "Analyzing the Secure Overlay Services Architecture under Intelligent DDoS Attacks (ICDCS 2004)",
        "monte_carlo": { "trials": opts.trials, "routes_per_trial": opts.routes_per_trial, "seed": opts.seed },
        "sweep": {
            "points": sweep.points,
            "points_executed": sweep.points_executed,
            "cache_hits": sweep.cache_hits,
            "dedup_hits": sweep.dedup_hits,
            "trials_executed": sweep.trials_executed,
            "pool_batches": sweep.pool_batches,
        },
        "files": written,
        "profile": serde_json::from_str::<serde_json::Value>(
            &sos_observe::telemetry::snapshot().to_json(),
        )?,
    });
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string_pretty(&manifest)?,
    )?;
    println!(
        "full report written to {} ({} files + manifest.json)",
        dir.display(),
        manifest["files"].as_array().unwrap().len()
    );
    Ok(())
}
