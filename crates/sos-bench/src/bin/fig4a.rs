//! Prints the fig4a series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig4a
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig4a());
}
