//! Prints the Chord-transport ablation.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ablation_chord
//! ```

use sos_bench::ablations::{chord_ablation, AblationOptions};

fn main() {
    print!("{}", chord_ablation(AblationOptions::default()));
}
