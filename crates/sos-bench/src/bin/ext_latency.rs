//! Prints the latency–resilience Pareto frontier (§5 "timely delivery").
//!
//! ```text
//! cargo run -p sos-bench --bin ext_latency
//! ```

use sos_bench::ablations::latency_frontier;

fn main() {
    println!("# ext-latency");
    println!("design,P_S,latency,pareto");
    for p in latency_frontier() {
        println!("{p}");
    }
}
