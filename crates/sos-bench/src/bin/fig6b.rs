//! Prints the fig6b series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig6b
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig6b());
}
