//! Prints the fig7 series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig7
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig7());
}
