//! Prints the fig8b series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig8b
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig8b());
}
