//! Prints the capacity/flow congestion extension (P_S vs per-slot load).
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_flow
//! ```

use sos_bench::ablations::{flow_extension, AblationOptions};

fn main() {
    print!("{}", flow_extension(AblationOptions::default()));
}
