//! Prints every paper figure (CSV blocks) in order.
//!
//! ```text
//! cargo run -p sos-bench --bin all_figures
//! ```

fn main() {
    for table in sos_bench::figures::all() {
        println!("{table}");
    }
}
