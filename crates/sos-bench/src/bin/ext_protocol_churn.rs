//! Prints Chord lookup correctness under continuous churn.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_protocol_churn
//! ```

use sos_bench::ablations::protocol_churn_extension;

fn main() {
    print!("{}", protocol_churn_extension());
}
