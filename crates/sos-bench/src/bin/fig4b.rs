//! Prints the fig4b series (CSV) with the paper's exact parameters.
//!
//! ```text
//! cargo run -p sos-bench --bin fig4b
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig4b());
}
