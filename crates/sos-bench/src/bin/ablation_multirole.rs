//! Prints the multi-role-baseline ablation.
//!
//! ```text
//! cargo run -p sos-bench --bin ablation_multirole
//! ```

use sos_bench::ablations::multirole_ablation;

fn main() {
    print!("{}", multirole_ablation());
}
