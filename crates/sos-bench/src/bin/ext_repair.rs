//! Prints the repair-dynamics extension (`P_S(t)`, stale vs adaptive).
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_repair
//! ```

use sos_bench::ablations::{repair_extension, AblationOptions};

fn main() {
    print!("{}", repair_extension(AblationOptions::default()));
}
