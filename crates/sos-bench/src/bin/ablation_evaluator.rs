//! Prints the evaluator ablation: closed-form vs Monte Carlo `P_S`.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ablation_evaluator
//! ```

use sos_bench::ablations::{evaluator_ablation, AblationOptions};
use sos_sim::ComparisonRow;

fn main() {
    println!("# ablation-evaluator");
    println!("{}", ComparisonRow::CSV_HEADER);
    for row in evaluator_ablation(AblationOptions::default()) {
        println!("{row}");
    }
}
