//! Prints the tornado sensitivity analysis at the paper's operating
//! point.
//!
//! ```text
//! cargo run -p sos-bench --bin sensitivity
//! ```

use sos_analysis::{tornado, OperatingPoint};
use sos_core::PathEvaluator;

fn main() {
    let point = OperatingPoint::paper_default();
    let base = point.price(PathEvaluator::Binomial).expect("valid point");
    println!("# sensitivity");
    println!("base P_S: {base:.6}");
    println!("parameter,ps_low,ps_high,swing");
    for entry in tornado(&point, 0.25, PathEvaluator::Binomial).expect("valid point") {
        println!("{entry}");
    }
}
