//! Machine-readable perf baseline for the zero-rebuild trial engine.
//!
//! Measures identical Monte Carlo workloads two ways:
//!
//! * **before** — the allocating reference path: a fresh
//!   [`Overlay::build`] and exhaustive [`ChordRing::build_reference`]
//!   per trial, plus the allocating `route_message_with` entry point
//!   (the engine as it stood before the scratch-reuse rework);
//! * **after** — the production engine ([`Simulation::run`]), whose
//!   per-worker scratch rebuilds the overlay/ring/route buffers in
//!   place.
//!
//! Both sides replay the same per-trial seed schedule, so their
//! delivery counts must match exactly — asserted on every workload;
//! the comparison measures allocation strategy, never different work.
//!
//! A fifth workload measures the cross-scenario *sweep executor*: an
//! ablation-shaped grid of many small simulation points run once as a
//! loop of per-point `run_parallel` calls (the pre-executor shape: one
//! thread-pool spawn/join and one cold scratch per point) and once
//! through a cache-cold [`sos_sim::SweepExecutor`] at the same thread
//! count. Per-point delivery counts are asserted equal.
//!
//! A sixth workload measures the engine's per-worker *build memo*: the
//! same sweep grid with build reuse disabled (before: every trial pays
//! a fresh `build_into`) and enabled (after: structurally identical
//! points at equal trial indices reuse the memoized overlay/ring).
//! Per-point counts are asserted equal — the dedicated RNG sub-streams
//! make skipping the build draws observationally pure.
//!
//! A seventh workload measures the *live telemetry plane*: the same
//! sweep grid with `sos_observe::telemetry` off (before) and on
//! (after). Per-point counts are asserted equal — telemetry observes
//! but never steers — and its speedup (≈1.0 when the relaxed-atomic
//! slots are cheap) rides the same regression gate, so a future change
//! that makes telemetry expensive fails CI. The report also embeds the
//! snapshot's per-phase profile summary under `"profile"`.
//!
//! An eighth workload measures the *batched SoA route kernel*: a
//! routing-heavy Chord run at batch width 1 (the per-lane scalar
//! oracle) and at the production width 64 (layer-synchronous lanes
//! sharing the per-trial Chord hop memo). Delivery counts are asserted
//! equal — lane seeds come from per-route `ROUTE` sub-streams, so
//! batch width is observationally pure.
//!
//! A ninth workload measures the *request-tracing plane*: the same
//! sweep grid with `sos_observe::trace` (the flight recorder) off
//! (before) and on (after), telemetry enabled on both sides. Per-point
//! counts are asserted equal — spans read the monotonic clock, never
//! the simulation RNG — and the speedup rides the regression gate; CI
//! additionally asserts the recorder costs at most 2% on this
//! workload.
//!
//! Output: `BENCH_trials.json` (or `--out PATH`) with trials/sec,
//! ns/trial and peak RSS per workload. `--check PATH` additionally
//! compares the freshly measured speedups against a committed baseline
//! and exits non-zero when any workload's speedup (after/before — a
//! machine-portable ratio, unlike raw trials/sec) regressed by more
//! than 25%.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sos_attack::OneBurstAttacker;
use sos_bench::ablations::AblationOptions;
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, PathEvaluator, Scenario, SystemParams,
};
use sos_faults::RetryPolicy;
use sos_observe::{telemetry, trace};
use sos_overlay::{ChordRing, NodeId, Overlay, Transport};
use sos_sim::engine::{Simulation, SimulationConfig, TransportKind};
use sos_sim::routing::{route_message_with, RoutingPolicy};
use sos_sim::{
    route_lane_seed, set_route_batch_width, stream, trial_stream_seed, SweepExecutor,
};
use std::time::Instant;

const ROUTES_PER_TRIAL: u64 = 50;
const SEED: u64 = 13;

/// Budget scaled to the overlay: 10% of the population congested plus
/// 100 break-in attempts, so routing does comparable work per size.
fn budget(overlay_nodes: u64) -> AttackBudget {
    AttackBudget::new(100, overlay_nodes / 10)
}

struct Workload {
    name: &'static str,
    overlay_nodes: u64,
    transport: TransportKind,
    trials: u64,
}

const WORKLOADS: &[Workload] = &[
    Workload { name: "direct-1k", overlay_nodes: 1_000, transport: TransportKind::Direct, trials: 60 },
    Workload { name: "direct-10k", overlay_nodes: 10_000, transport: TransportKind::Direct, trials: 12 },
    Workload { name: "chord-1k", overlay_nodes: 1_000, transport: TransportKind::Chord, trials: 60 },
    Workload { name: "chord-10k", overlay_nodes: 10_000, transport: TransportKind::Chord, trials: 12 },
];

fn scenario(big_n: u64) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(big_n, 100, 0.5).expect("valid"))
        .layers(3)
        .mapping(MappingDegree::OneTo(5))
        .filters(10)
        .build()
        .expect("valid")
}

/// The pre-rework trial loop: every structure built fresh, the ring
/// via the exhaustive reference construction. Returns delivered routes.
fn reference_run(
    scenario: &Scenario,
    transport: TransportKind,
    trials: u64,
    budget: AttackBudget,
) -> u64 {
    let mut successes = 0u64;
    for trial in 0..trials {
        // The engine's per-trial seed schedule, via the same derivation
        // it uses — diverging here fails the before/after assertion.
        let mut overlay_rng = StdRng::seed_from_u64(trial_stream_seed(
            SEED,
            stream::OVERLAY_BUILD,
            trial,
        ));
        let mut ring_rng =
            StdRng::seed_from_u64(trial_stream_seed(SEED, stream::RING_BUILD, trial));
        let mut rng = StdRng::seed_from_u64(trial_stream_seed(SEED, stream::ATTACK, trial));
        let mut overlay = Overlay::build(scenario, &mut overlay_rng);
        let mut transport = match transport {
            TransportKind::Direct => Transport::Direct,
            TransportKind::Chord => {
                let members: Vec<NodeId> = overlay.overlay_ids().collect();
                Transport::Chord(ChordRing::build_reference(&mut ring_rng, &members))
            }
        };
        OneBurstAttacker::new(budget).execute(&mut overlay, &mut rng);
        transport.sync_damage(&overlay);
        // The engine prices both analytical evaluators per trial; the
        // reference does the same so only allocation strategy differs.
        let state = overlay.compromise_state();
        let topo = scenario.topology();
        std::hint::black_box(
            PathEvaluator::Hypergeometric
                .success_probability(topo, &state)
                .value(),
        );
        std::hint::black_box(
            PathEvaluator::Binomial
                .success_probability(topo, &state)
                .value(),
        );
        for route in 0..ROUTES_PER_TRIAL {
            // Each route draws from its own `ROUTE` sub-stream, the
            // same lane-seed derivation the batched kernel uses.
            let mut route_rng = StdRng::seed_from_u64(route_lane_seed(SEED, trial, route));
            let result = route_message_with(
                &overlay,
                &transport,
                RoutingPolicy::default(),
                None,
                &RetryPolicy::none(),
                &mut route_rng,
            );
            if result.delivered {
                successes += 1;
            }
        }
    }
    successes
}

fn engine_run(
    scenario: &Scenario,
    transport: TransportKind,
    trials: u64,
    budget: AttackBudget,
) -> u64 {
    let cfg = SimulationConfig::new(scenario.clone(), AttackConfig::OneBurst { budget })
    .trials(trials)
    .routes_per_trial(ROUTES_PER_TRIAL)
    .seed(SEED)
    .transport(transport);
    Simulation::new(cfg).run().successes
}

/// The sweep workload: the shared ablation-shaped profiling grid
/// ([`sos_bench::ablations::profile_grid`]) at bench sizing — the same
/// 42 points `sos profile --workload grid` measures, so the profiled
/// shape is the benchmarked shape.
fn sweep_configs() -> Vec<SimulationConfig> {
    sos_bench::ablations::profile_grid(AblationOptions {
        trials: 2,
        routes_per_trial: 20,
        seed: SEED,
    })
}

/// The pre-executor sweep shape: one `run_parallel` call per point,
/// each paying its own thread spawn/join and cold scratch.
fn sweep_reference_run(configs: &[SimulationConfig], threads: usize) -> Vec<u64> {
    configs
        .iter()
        .map(|cfg| Simulation::new(cfg.clone()).run_parallel(threads).successes)
        .collect()
}

/// Peak resident set (VmHWM) in bytes, when the platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Times `f` and returns, alongside the result and wall seconds, the
/// per-phase attributed nanoseconds and build-memo reuse count for
/// exactly that span. The telemetry counters are process-cumulative,
/// so a snapshot delta isolates one workload; the caller keeps
/// telemetry enabled around both sides of a comparison so neither side
/// gets a free ride.
fn timed_with_phases<T>(f: impl FnOnce() -> T) -> (T, f64, serde_json::Value, u64) {
    let t0 = telemetry::snapshot();
    let (out, secs) = timed(f);
    let t1 = telemetry::snapshot();
    let phases: Vec<(String, serde_json::Value)> = t0
        .phases
        .iter()
        .zip(&t1.phases)
        .map(|(before, after)| {
            (
                format!("{}_ns", after.phase.label().replace('-', "_")),
                serde_json::Value::U64(after.total_ns - before.total_ns),
            )
        })
        .collect();
    (
        out,
        secs,
        serde_json::Value::Map(phases),
        t1.build_reused - t0.build_reused,
    )
}

fn side_json(seconds: f64, trials: u64) -> serde_json::Value {
    serde_json::json!({
        "seconds": seconds,
        "trials_per_sec": trials as f64 / seconds,
        "ns_per_trial": seconds * 1e9 / trials as f64,
    })
}

fn check_against(path: &str, fresh: &serde_json::Value) -> Result<(), String> {
    let committed = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let committed: serde_json::Value =
        serde_json::from_str(&committed).map_err(|e| format!("bad baseline JSON: {e:?}"))?;
    let find = |v: &serde_json::Value, name: &str| -> Option<f64> {
        v["workloads"]
            .as_array()?
            .iter()
            .find(|w| w["name"].as_str() == Some(name))
            .and_then(|w| w["speedup"].as_f64())
    };
    let names: Vec<&str> = fresh["workloads"]
        .as_array()
        .map(|rows| rows.iter().filter_map(|w| w["name"].as_str()).collect())
        .unwrap_or_default();
    let mut failures = Vec::new();
    for name in names {
        let (Some(old), Some(new)) = (find(&committed, name), find(fresh, name)) else {
            continue;
        };
        // Speedup (after/before on the same machine, same run) is the
        // portable metric; raw trials/sec tracks the host CPU.
        if new < 0.75 * old {
            failures.push(format!(
                "{name}: speedup {new:.2}x vs committed {old:.2}x (>25% regression)"
            ));
        } else {
            println!("check {name}: speedup {new:.2}x vs committed {old:.2}x — ok");
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_trials.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other} (supported: --out PATH, --check PATH)");
                std::process::exit(2);
            }
        }
    }

    // Phases are recorded for every timed run below (both sides of
    // each comparison, so neither gets a free ride); the dedicated
    // telemetry-overhead workload toggles the plane itself.
    telemetry::set_enabled(true);

    let mut rows = Vec::new();
    for w in WORKLOADS {
        let s = scenario(w.overlay_nodes);
        let b = budget(w.overlay_nodes);
        // Warm both paths (page cache, allocator) outside the timers;
        // the engine is then timed *first* so the reference gets the
        // warmer allocator — any bias is against the reported speedup.
        engine_run(&s, w.transport, 2, b);
        reference_run(&s, w.transport, 2, b);
        let (after_successes, after_secs, phases, build_reused) =
            timed_with_phases(|| engine_run(&s, w.transport, w.trials, b));
        let (before_successes, before_secs) =
            timed(|| reference_run(&s, w.transport, w.trials, b));
        assert_eq!(
            before_successes, after_successes,
            "{}: reference and engine runs diverged — not measuring the same work",
            w.name
        );
        let speedup = before_secs / after_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x",
            w.name,
            w.trials as f64 / before_secs,
            w.trials as f64 / after_secs,
            speedup
        );
        rows.push(serde_json::json!({
            "name": w.name,
            "transport": match w.transport {
                TransportKind::Direct => "direct",
                TransportKind::Chord => "chord",
            },
            "overlay_nodes": w.overlay_nodes,
            "trials": w.trials,
            "routes_per_trial": ROUTES_PER_TRIAL,
            "threads": 1,
            "delivered": after_successes,
            "before": side_json(before_secs, w.trials),
            "after": side_json(after_secs, w.trials),
            "speedup": speedup,
            "phases": phases,
            "build_reused": build_reused,
        }));
    }

    // Routing-batch workload: a routing-heavy Chord run through the
    // engine at batch width 1 (every lane routed by the scalar
    // `route_message_hint` oracle) and at the production width 64
    // (layer-synchronous SoA lanes sharing the per-trial Chord hop
    // memo). Per-route `ROUTE` sub-streams make the width
    // observationally pure, so delivery counts are asserted equal.
    {
        let trials = 16u64;
        let routes = 400u64;
        let cfg = SimulationConfig::new(
            scenario(2_000),
            AttackConfig::OneBurst { budget: budget(2_000) },
        )
        .trials(trials)
        .routes_per_trial(routes)
        .seed(SEED)
        .transport(TransportKind::Chord);
        let run_once = || Simulation::new(cfg.clone()).run().successes;
        // Warm both widths outside the timers; width 64 (after) is
        // timed first so the scalar width inherits the warmer
        // allocator — any bias is against the reported speedup.
        set_route_batch_width(1);
        run_once();
        set_route_batch_width(64);
        run_once();
        let (after_successes, after_secs, phases, _) = timed_with_phases(run_once);
        set_route_batch_width(1);
        let (before_successes, before_secs) = timed(run_once);
        set_route_batch_width(64);
        assert_eq!(
            before_successes, after_successes,
            "routing-batch: width 1 and width 64 diverged — batch width must be \
             observationally pure"
        );
        let speedup = before_secs / after_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x \
             (batch width 1 vs 64)",
            "routing-batch",
            trials as f64 / before_secs,
            trials as f64 / after_secs,
            speedup,
        );
        rows.push(serde_json::json!({
            "name": "routing-batch",
            "transport": "chord",
            "overlay_nodes": 2_000u64,
            "trials": trials,
            "routes_per_trial": routes,
            "threads": 1,
            "delivered": after_successes,
            "before": side_json(before_secs, trials),
            "after": side_json(after_secs, trials),
            "speedup": speedup,
            "phases": phases,
        }));
    }

    // Sweep-executor workload: many small points, before = one
    // run_parallel call per point, after = one cache-cold executor run
    // at the same thread count.
    {
        let threads = sos_sim::num_threads();
        let configs = sweep_configs();
        let total_trials: u64 = configs.iter().map(|c| c.configured_trials()).sum();
        // Warm both paths outside the timers; the executor (after) is
        // timed first so the reference inherits the warmer allocator —
        // any bias is against the reported speedup. Warm-up uses its
        // own executor so the timed one starts cache-cold.
        sweep_reference_run(&configs[..2], threads);
        SweepExecutor::with_threads(threads).run(&configs[..2]);
        let (after_successes, after_secs, phases, build_reused) = timed_with_phases(|| {
            let mut exec = SweepExecutor::with_threads(threads);
            let results = exec.run(&configs);
            let stats = exec.stats();
            (
                results.iter().map(|r| r.successes).collect::<Vec<u64>>(),
                stats,
            )
        });
        let (before_successes, before_secs) =
            timed(|| sweep_reference_run(&configs, threads));
        let (after_successes, stats) = after_successes;
        assert_eq!(
            before_successes, after_successes,
            "sweep-ablation: per-point counts diverged — executor is not \
             running the same points"
        );
        let speedup = before_secs / after_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x \
             ({} points, {} executed, {} dedup hits, {} builds reused)",
            "sweep-ablation",
            total_trials as f64 / before_secs,
            total_trials as f64 / after_secs,
            speedup,
            stats.points,
            stats.points_executed,
            stats.dedup_hits,
            build_reused,
        );
        rows.push(serde_json::json!({
            "name": "sweep-ablation",
            "points": stats.points,
            "points_executed": stats.points_executed,
            "dedup_hits": stats.dedup_hits,
            "trials": total_trials,
            "threads": threads,
            "before": side_json(before_secs, total_trials),
            "after": side_json(after_secs, total_trials),
            "speedup": speedup,
            "phases": phases,
            "build_reused": build_reused,
        }));
    }

    // Build-reuse workload: the same ablation grid through the sweep
    // executor with the engine's per-worker build memo disabled
    // (before: every trial pays a fresh `build_into`) and enabled
    // (after: structurally identical points at equal trial indices hit
    // the memo). The dedicated RNG sub-streams make the memo
    // observationally pure, so per-point counts are asserted equal.
    {
        let threads = sos_sim::num_threads();
        let configs = sweep_configs();
        let total_trials: u64 = configs.iter().map(|c| c.configured_trials()).sum();
        let run_once = || {
            let mut exec = SweepExecutor::with_threads(threads);
            exec.run(&configs)
                .iter()
                .map(|r| r.successes)
                .collect::<Vec<u64>>()
        };
        // Warm both paths outside the timers; reuse-on (after) is timed
        // first so the reference inherits the warmer allocator.
        sos_sim::set_build_reuse(false);
        run_once();
        sos_sim::set_build_reuse(true);
        run_once();
        let (on_successes, on_secs, phases, build_reused) = timed_with_phases(run_once);
        sos_sim::set_build_reuse(false);
        let (off_successes, off_secs) = timed(run_once);
        sos_sim::set_build_reuse(true);
        assert_eq!(
            off_successes, on_successes,
            "build-reuse: per-point counts diverged — the build memo must be \
             observationally pure"
        );
        let speedup = off_secs / on_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x \
             ({} of {} trials reused a build)",
            "build-reuse",
            total_trials as f64 / off_secs,
            total_trials as f64 / on_secs,
            speedup,
            build_reused,
            total_trials,
        );
        rows.push(serde_json::json!({
            "name": "build-reuse",
            "trials": total_trials,
            "threads": threads,
            "before": side_json(off_secs, total_trials),
            "after": side_json(on_secs, total_trials),
            "speedup": speedup,
            "phases": phases,
            "build_reused": build_reused,
        }));
    }

    // Telemetry-overhead workload: the same sweep grid with the live
    // telemetry plane off (before) and on (after). Per-point counts
    // must match exactly — telemetry observes but never steers — and
    // the speedup (≈1.0 when the relaxed-atomic slots are cheap) rides
    // the same >25% regression gate as every other workload.
    let profile_snapshot;
    {
        let threads = sos_sim::num_threads();
        let configs = sweep_configs();
        let total_trials: u64 = configs.iter().map(|c| c.configured_trials()).sum();
        let run_once = || {
            let mut exec = SweepExecutor::with_threads(threads);
            exec.run(&configs)
                .iter()
                .map(|r| r.successes)
                .collect::<Vec<u64>>()
        };
        // Warm both paths outside the timers.
        telemetry::set_enabled(false);
        run_once();
        telemetry::set_enabled(true);
        run_once();
        let (on_successes, on_secs, phases, _) = timed_with_phases(run_once);
        profile_snapshot = telemetry::snapshot();
        telemetry::set_enabled(false);
        let (off_successes, off_secs) = timed(run_once);
        assert_eq!(
            off_successes, on_successes,
            "telemetry-overhead: counts diverged — telemetry must never steer results"
        );
        let speedup = off_secs / on_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x \
             (telemetry off vs on)",
            "telemetry",
            total_trials as f64 / off_secs,
            total_trials as f64 / on_secs,
            speedup,
        );
        rows.push(serde_json::json!({
            "name": "telemetry",
            "trials": total_trials,
            "threads": threads,
            "before": side_json(off_secs, total_trials),
            "after": side_json(on_secs, total_trials),
            "speedup": speedup,
            "phases": phases,
        }));
    }
    // Trace-overhead workload: the same sweep grid with the flight
    // recorder off (before) and on (after); telemetry stays on for
    // both sides, so this isolates the span plane itself (per-point
    // cache-probe/sweep-point spans plus per-batch pool spans). Spans
    // read the monotonic clock and a process-global id counter — never
    // the simulation RNG — so per-point counts are asserted equal.
    {
        let threads = sos_sim::num_threads();
        let configs = sweep_configs();
        let total_trials: u64 = configs.iter().map(|c| c.configured_trials()).sum();
        let run_once = || {
            let mut exec = SweepExecutor::with_threads(threads);
            exec.run(&configs)
                .iter()
                .map(|r| r.successes)
                .collect::<Vec<u64>>()
        };
        // Warm both paths outside the timers; trace-on (after) is timed
        // first so the untraced side inherits the warmer allocator.
        telemetry::set_enabled(true);
        trace::set_enabled(false);
        run_once();
        trace::set_enabled(true);
        run_once();
        let (on_successes, on_secs, phases, _) = timed_with_phases(run_once);
        let spans_recorded = trace::recorder().recorded();
        trace::set_enabled(false);
        let (off_successes, off_secs) = timed(run_once);
        assert_eq!(
            off_successes, on_successes,
            "trace-overhead: counts diverged — tracing must never steer results"
        );
        let speedup = off_secs / on_secs;
        println!(
            "{:11} before {:8.1} trials/s  after {:8.1} trials/s  speedup {:.2}x \
             (flight recorder off vs on, {} spans recorded)",
            "trace",
            total_trials as f64 / off_secs,
            total_trials as f64 / on_secs,
            speedup,
            spans_recorded,
        );
        rows.push(serde_json::json!({
            "name": "trace",
            "trials": total_trials,
            "threads": threads,
            "spans_recorded": spans_recorded,
            "before": side_json(off_secs, total_trials),
            "after": side_json(on_secs, total_trials),
            "speedup": speedup,
            "phases": phases,
        }));
    }
    let profile: serde_json::Value = serde_json::from_str(&profile_snapshot.to_json())
        .expect("telemetry snapshot JSON parses");

    let report = serde_json::json!({
        "suite": "zero-rebuild trial engine baseline",
        "generated_by": "bench_baseline",
        "seed": SEED,
        "attack": "one-burst nt=100 nc=N/10",
        "peak_rss_bytes": peak_rss_bytes(),
        "workloads": rows,
        "profile": profile,
    });
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, pretty)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("baseline written to {out_path}");

    if let Some(path) = check_path {
        match check_against(&path, &report) {
            Ok(()) => println!("regression check against {path}: ok"),
            Err(msg) => {
                eprintln!("regression check against {path} FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
