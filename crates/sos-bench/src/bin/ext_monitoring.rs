//! Prints the traffic-monitoring attacker extension (P_S vs tap
//! probability).
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_monitoring
//! ```

use sos_bench::ablations::{monitoring_extension, AblationOptions};

fn main() {
    print!("{}", monitoring_extension(AblationOptions::default()));
}
