//! Prints SOS delivery over a stale-then-converging Chord protocol
//! ring.
//!
//! ```text
//! cargo run --release -p sos-bench --bin ext_staleness
//! ```

use sos_bench::ablations::staleness_extension;

fn main() {
    print!("{}", staleness_extension());
}
