//! Prints Fig. 4(a) recomputed with the exact distribution-level
//! congestion analysis.
//!
//! ```text
//! cargo run -p sos-bench --bin fig4a_exact
//! ```

fn main() {
    print!("{}", sos_bench::figures::fig4a_exact());
}
