//! Figure-regeneration library for the ICDCS 2004 evaluation.
//!
//! The paper's evaluation section contains seven figure panels and no
//! tables; [`figures`] regenerates each as a [`sos_analysis::SweepTable`]
//! with the paper's exact parameters. [`ablations`] adds the
//! beyond-the-paper experiments catalogued in `DESIGN.md` (evaluator
//! gap, routing-policy gap, Chord-transport gap, repair dynamics,
//! multi-role baseline).
//!
//! Every function here is deterministic (analytical figures) or
//! deterministic-under-seed (Monte Carlo ablations), so the binaries in
//! `src/bin/` that print them are reproducible, and the integration
//! tests assert the paper's qualitative shapes on the same code paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;

pub use ablations::AblationOptions;
