//! One generator per paper figure, with the paper's exact parameters.
//!
//! Shared defaults (§3.1.2 / §3.2.3): `N = 10000`, `n = 100`,
//! `P_B = 0.5`, 10 filters, SOS nodes evenly distributed; successive
//! model additionally `N_T = 200`, `N_C = 2000`, `R = 3`, `P_E = 0.2`.
//!
//! All `P_S` values use the binomial evaluator by default — the smooth
//! relaxation whose shapes match the paper's plotted curves (see
//! `DESIGN.md` §1); each generator also has a `*_with` variant taking an
//! explicit [`PathEvaluator`] so the evaluator gap itself can be
//! plotted.

use sos_analysis::sweep::{
    sweep_break_in, sweep_layers_one_burst, sweep_layers_successive, sweep_rounds,
    SweepConfig,
};
use sos_analysis::SweepTable;
use sos_core::{
    AttackBudget, MappingDegree, NodeDistribution, PathEvaluator, SuccessiveParams,
    SystemParams,
};

/// Layer grid used by the layer-sweep figures.
pub const LAYER_GRID: std::ops::RangeInclusive<usize> = 1..=10;

fn config(mapping: MappingDegree, evaluator: PathEvaluator) -> SweepConfig {
    let mut c = SweepConfig::paper_default(mapping);
    c.evaluator = evaluator;
    c
}

/// Fig. 4(a): one-burst, pure congestion (`N_T = 0`), `P_S` vs `L` for
/// mappings {one-to-one, one-to-half, one-to-all} × `N_C ∈ {2000, 6000}`.
pub fn fig4a() -> SweepTable {
    fig4a_with(PathEvaluator::Binomial)
}

/// [`fig4a`] with an explicit evaluator.
pub fn fig4a_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig4a", "L", "P_S");
    for n_c in [2_000u64, 6_000] {
        for mapping in [
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ] {
            let label = format!("{mapping} N_C={n_c}");
            let series = sweep_layers_one_burst(
                &config(mapping, evaluator),
                AttackBudget::congestion_only(n_c),
                LAYER_GRID,
                label,
            )
            .expect("paper-grid configurations are valid");
            table.push(series);
        }
    }
    table
}

/// Fig. 4(a) recomputed with the *exact* distribution-level analysis
/// (`sos_analysis::exact`) instead of the average-case model — the
/// variant that reproduces the paper's declining one-to-half and
/// one-to-all curves, which the average-case hypergeometric form cannot
/// (see `EXPERIMENTS.md`, "Evaluator choice").
pub fn fig4a_exact() -> SweepTable {
    use sos_analysis::ExactCongestionAnalysis;
    use sos_core::Scenario;
    let mut table = SweepTable::new("fig4a-exact", "L", "P_S");
    for n_c in [2_000u64, 6_000] {
        for mapping in [
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ] {
            let mut points = Vec::new();
            for l in LAYER_GRID {
                let scenario = Scenario::builder()
                    .system(SystemParams::paper_default())
                    .layers(l)
                    .mapping(mapping.clone())
                    .filters(10)
                    .build()
                    .expect("paper-grid configurations are valid");
                let ps = ExactCongestionAnalysis::new(&scenario, n_c)
                    .expect("budget within overlay")
                    .success_probability()
                    .value();
                points.push(sos_analysis::SweepPoint {
                    x: l as f64,
                    y: ps,
                });
            }
            table.push(sos_analysis::SweepSeries {
                label: format!("{mapping} N_C={n_c}"),
                points,
            });
        }
    }
    table
}

/// Fig. 4(b): one-burst with break-in, `N_C = 2000`,
/// `N_T ∈ {200, 2000}`, same mapping set as Fig. 4(a).
pub fn fig4b() -> SweepTable {
    fig4b_with(PathEvaluator::Binomial)
}

/// [`fig4b`] with an explicit evaluator.
pub fn fig4b_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig4b", "L", "P_S");
    for n_t in [200u64, 2_000] {
        for mapping in [
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ] {
            let label = format!("{mapping} N_T={n_t}");
            let series = sweep_layers_one_burst(
                &config(mapping, evaluator),
                AttackBudget::new(n_t, 2_000),
                LAYER_GRID,
                label,
            )
            .expect("paper-grid configurations are valid");
            table.push(series);
        }
    }
    table
}

/// Fig. 6(a): successive attack, `P_S` vs `L` for the five named
/// mappings (one-to-one, one-to-two, one-to-five, one-to-half,
/// one-to-all).
pub fn fig6a() -> SweepTable {
    fig6a_with(PathEvaluator::Binomial)
}

/// [`fig6a`] with an explicit evaluator.
pub fn fig6a_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig6a", "L", "P_S");
    for mapping in MappingDegree::paper_named_set() {
        let label = mapping.to_string();
        let series = sweep_layers_successive(
            &config(mapping, evaluator),
            AttackBudget::paper_default(),
            SuccessiveParams::paper_default(),
            LAYER_GRID,
            label,
        )
        .expect("paper-grid configurations are valid");
        table.push(series);
    }
    table
}

/// Fig. 6(b): successive attack, sensitivity to node distribution
/// {even, increasing, decreasing} × mappings {one-to-two, one-to-five},
/// vs `L`.
pub fn fig6b() -> SweepTable {
    fig6b_with(PathEvaluator::Binomial)
}

/// [`fig6b`] with an explicit evaluator.
pub fn fig6b_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig6b", "L", "P_S");
    for mapping in [MappingDegree::OneTo(2), MappingDegree::OneTo(5)] {
        for dist in [
            NodeDistribution::Even,
            NodeDistribution::Increasing,
            NodeDistribution::Decreasing,
        ] {
            let mut c = config(mapping.clone(), evaluator);
            c.distribution = dist.clone();
            let label = format!("{mapping} {dist}");
            // L = 1 admits only one distribution; start at 2.
            let series = sweep_layers_successive(
                &c,
                AttackBudget::paper_default(),
                SuccessiveParams::paper_default(),
                2..=8,
                label,
            )
            .expect("paper-grid configurations are valid");
            table.push(series);
        }
    }
    table
}

/// Fig. 7: successive attack, `P_S` vs round count `R ∈ 1..=10` for
/// `L ∈ {3, 5, 7}`, mapping one-to-five, even distribution.
pub fn fig7() -> SweepTable {
    fig7_with(PathEvaluator::Binomial)
}

/// [`fig7`] with an explicit evaluator.
pub fn fig7_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig7", "R", "P_S");
    for l in [3usize, 5, 7] {
        let series = sweep_rounds(
            &config(MappingDegree::OneTo(5), evaluator),
            AttackBudget::paper_default(),
            0.2,
            l,
            1..=10,
            format!("L={l}"),
        )
        .expect("paper-grid configurations are valid");
        table.push(series);
    }
    table
}

/// Break-in budget grid used by the Fig. 8 panels.
pub fn break_in_grid() -> Vec<u64> {
    (0..=10).map(|i| i * 500).collect()
}

/// Fig. 8(a): successive attack, `P_S` vs `N_T` for overlay sizes
/// `N ∈ {10000, 20000}` × mappings {one-to-two, one-to-five}, `L = 3`.
pub fn fig8a() -> SweepTable {
    fig8a_with(PathEvaluator::Binomial)
}

/// [`fig8a`] with an explicit evaluator.
pub fn fig8a_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig8a", "N_T", "P_S");
    for big_n in [10_000u64, 20_000] {
        for mapping in [MappingDegree::OneTo(2), MappingDegree::OneTo(5)] {
            let mut c = config(mapping.clone(), evaluator);
            c.system = SystemParams::new(big_n, 100, 0.5).expect("valid system");
            let label = format!("{mapping} N={big_n}");
            let series = sweep_break_in(
                &c,
                2_000,
                SuccessiveParams::paper_default(),
                3,
                break_in_grid(),
                label,
            )
            .expect("paper-grid configurations are valid");
            table.push(series);
        }
    }
    table
}

/// Fig. 8(b): successive attack, `P_S` vs `N_T` for `L ∈ {3, 5}` ×
/// mappings {one-to-two, one-to-five}, `N = 10000`.
pub fn fig8b() -> SweepTable {
    fig8b_with(PathEvaluator::Binomial)
}

/// [`fig8b`] with an explicit evaluator.
pub fn fig8b_with(evaluator: PathEvaluator) -> SweepTable {
    let mut table = SweepTable::new("fig8b", "N_T", "P_S");
    for l in [3usize, 5] {
        for mapping in [MappingDegree::OneTo(2), MappingDegree::OneTo(5)] {
            let label = format!("{mapping} L={l}");
            let series = sweep_break_in(
                &config(mapping.clone(), evaluator),
                2_000,
                SuccessiveParams::paper_default(),
                l,
                break_in_grid(),
                label,
            )
            .expect("paper-grid configurations are valid");
            table.push(series);
        }
    }
    table
}

/// The analysis the paper omits for space ("we do not report our
/// analysis on the sensitivity of P_S to N_C; interested readers can
/// refer \[3\]" — the technical report): `P_S` vs the congestion budget
/// `N_C` under the successive model for `L ∈ {3, 5}` × mappings
/// {one-to-two, one-to-five}, other parameters at the paper's defaults.
pub fn supplemental_nc() -> SweepTable {
    supplemental_nc_with(PathEvaluator::Binomial)
}

/// [`supplemental_nc`] with an explicit evaluator.
pub fn supplemental_nc_with(evaluator: PathEvaluator) -> SweepTable {
    use sos_analysis::SuccessiveAnalysis;
    use sos_core::Scenario;
    let mut table = SweepTable::new("fig-nc", "N_C", "P_S");
    let grid: Vec<u64> = (0..=10).map(|i| i * 600).collect();
    for l in [3usize, 5] {
        for mapping in [MappingDegree::OneTo(2), MappingDegree::OneTo(5)] {
            let scenario = Scenario::builder()
                .system(SystemParams::paper_default())
                .layers(l)
                .mapping(mapping.clone())
                .filters(10)
                .build()
                .expect("paper-grid configurations are valid");
            let points = grid
                .iter()
                .map(|&n_c| {
                    let ps = SuccessiveAnalysis::new(
                        &scenario,
                        AttackBudget::new(200, n_c),
                        SuccessiveParams::paper_default(),
                    )
                    .expect("budget within overlay")
                    .run()
                    .success_probability(evaluator)
                    .value();
                    sos_analysis::SweepPoint {
                        x: n_c as f64,
                        y: ps,
                    }
                })
                .collect();
            table.push(sos_analysis::SweepSeries {
                label: format!("{mapping} L={l}"),
                points,
            });
        }
    }
    table
}

/// Every paper figure in order — used by the `all_figures` binary and
/// the completeness test.
pub fn all() -> Vec<SweepTable> {
    vec![fig4a(), fig4b(), fig6a(), fig6b(), fig7(), fig8a(), fig8b()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_math::series::{trend, Trend};

    #[test]
    fn fig4a_has_six_series_over_ten_layers() {
        let t = fig4a();
        assert_eq!(t.series.len(), 6);
        for s in &t.series {
            assert_eq!(s.points.len(), 10);
        }
    }

    #[test]
    fn fig4a_shapes_match_paper() {
        let t = fig4a();
        // P_S decreases with L for every mapping/intensity.
        for s in &t.series {
            assert_eq!(
                trend(&s.ys(), 1e-9),
                Trend::NonIncreasing,
                "series {} is not declining",
                s.label
            );
        }
        // Higher mapping degree is better under pure congestion.
        let one = t.series_by_label("one-to-one N_C=2000").unwrap();
        let all = t.series_by_label("one-to-all N_C=2000").unwrap();
        for (p1, pa) in one.points.iter().zip(&all.points) {
            assert!(pa.y >= p1.y - 1e-9, "one-to-all must dominate at L={}", p1.x);
        }
        // Heavier congestion is worse.
        let light = t.series_by_label("one-to-one N_C=2000").unwrap();
        let heavy = t.series_by_label("one-to-one N_C=6000").unwrap();
        for (pl, ph) in light.points.iter().zip(&heavy.points) {
            assert!(ph.y <= pl.y + 1e-9);
        }
    }

    #[test]
    fn fig4a_exact_one_to_all_declines() {
        // The distribution-level analysis reproduces the paper's
        // declining high-mapping curves that the average-case
        // hypergeometric form flattens to 1.
        let t = fig4a_exact();
        let s = t.series_by_label("one-to-all N_C=6000").unwrap();
        let ys = s.ys();
        assert_eq!(trend(&ys, 1e-12), Trend::NonIncreasing);
        assert!(ys[0] > 0.999, "L=1 should be near-perfect: {}", ys[0]);
        assert!(ys[9] < 0.95, "L=10 must visibly decline: {}", ys[9]);
        // One-to-one agrees with the average-case model exactly.
        let exact_one = t.series_by_label("one-to-one N_C=2000").unwrap();
        let avg = fig4a_with(PathEvaluator::Hypergeometric);
        let avg_one = avg.series_by_label("one-to-one N_C=2000").unwrap();
        for (e, a) in exact_one.points.iter().zip(&avg_one.points) {
            assert!((e.y - a.y).abs() < 1e-6, "L={}: {} vs {}", e.x, e.y, a.y);
        }
    }

    #[test]
    fn fig4b_one_to_all_collapses() {
        let t = fig4b();
        let s = t.series_by_label("one-to-all N_T=2000").unwrap();
        for p in &s.points {
            assert!(p.y < 0.05, "one-to-all should collapse at L={}: {}", p.x, p.y);
        }
    }

    #[test]
    fn fig6a_has_five_series() {
        let t = fig6a();
        assert_eq!(t.series.len(), 5);
    }

    #[test]
    fn fig6b_distribution_sensitivity_grows_with_mapping_degree() {
        // Paper: "the sensitivity of P_S to the node distribution seems
        // more pronounced for higher mapping degrees".
        let t = fig6b();
        let spread = |mapping: &str| -> f64 {
            let series: Vec<_> = ["even", "increasing", "decreasing"]
                .iter()
                .map(|d| {
                    t.series_by_label(&format!("{mapping} {d}"))
                        .unwrap()
                        .ys()
                })
                .collect();
            // Max over L of the max-min spread across distributions.
            (0..series[0].len())
                .map(|i| {
                    let vals: Vec<f64> = series.iter().map(|s| s[i]).collect();
                    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
                    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
                    max - min
                })
                .fold(0.0, f64::max)
        };
        assert!(
            spread("one-to-5") > spread("one-to-2"),
            "one-to-5 spread {} should exceed one-to-2 spread {}",
            spread("one-to-5"),
            spread("one-to-2")
        );
    }

    #[test]
    fn fig6b_increasing_best_where_disclosure_cascade_dominates() {
        // Paper: "increasing node distributions performs best" — in our
        // reproduction this holds in the moderate-L, high-mapping region
        // where the disclosure cascade concentrates damage near the
        // target (see EXPERIMENTS.md for the full discussion).
        let t = fig6b();
        let at = |label: &str, l: f64| -> f64 {
            t.series_by_label(label)
                .unwrap()
                .points
                .iter()
                .find(|p| p.x == l)
                .unwrap()
                .y
        };
        let inc = at("one-to-5 increasing", 4.0);
        let even = at("one-to-5 even", 4.0);
        let dec = at("one-to-5 decreasing", 4.0);
        assert!(
            inc > even && even > dec,
            "expected increasing > even > decreasing at L=4/one-to-5: {inc} {even} {dec}"
        );
    }

    #[test]
    fn fig7_rounds_hurt_less_with_more_layers() {
        let t = fig7();
        for s in &t.series {
            assert_eq!(
                trend(&s.ys(), 1e-6),
                Trend::NonIncreasing,
                "P_S must fall with R for {}",
                s.label
            );
        }
    }

    #[test]
    fn fig8a_larger_overlay_helps() {
        let t = fig8a();
        let small = t.series_by_label("one-to-5 N=10000").unwrap();
        let large = t.series_by_label("one-to-5 N=20000").unwrap();
        // For positive N_T, diluting the attacker's random trials raises
        // P_S.
        for (ps, pl) in small.points.iter().zip(&large.points).skip(1) {
            assert!(
                pl.y >= ps.y - 1e-9,
                "N=20000 should dominate at N_T={}",
                ps.x
            );
        }
    }

    #[test]
    fn fig8b_declines_in_break_in_budget() {
        let t = fig8b();
        for s in &t.series {
            assert_eq!(trend(&s.ys(), 1e-6), Trend::NonIncreasing, "{}", s.label);
        }
    }

    #[test]
    fn supplemental_nc_declines_and_ranks_mappings() {
        let t = supplemental_nc();
        assert_eq!(t.series.len(), 4);
        for s in &t.series {
            assert_eq!(
                trend(&s.ys(), 1e-6),
                Trend::NonIncreasing,
                "P_S must fall with N_C for {}",
                s.label
            );
            // Zero congestion budget: break-in alone leaves some service.
            assert!(s.points[0].y > 0.0);
        }
        // Crossover: with no congestion budget the break-ins alone barely
        // matter, so the redundancy of one-to-five wins; as soon as the
        // attacker can congest what it disclosed, one-to-two dominates.
        let two = t.series_by_label("one-to-2 L=3").unwrap();
        let five = t.series_by_label("one-to-5 L=3").unwrap();
        assert!(five.points[0].y > two.points[0].y, "redundancy wins at N_C=0");
        for (a, b) in two.points.iter().zip(&five.points).skip(1) {
            assert!(a.y >= b.y - 1e-9, "at N_C={}", a.x);
        }
        let cross = sos_math::series::crossover_index(&five.ys(), &two.ys());
        assert_eq!(cross, Some(1), "crossover at the first non-zero budget");
    }

    #[test]
    fn all_returns_the_seven_panels() {
        let titles: Vec<String> = all().into_iter().map(|t| t.title).collect();
        assert_eq!(
            titles,
            vec!["fig4a", "fig4b", "fig6a", "fig6b", "fig7", "fig8a", "fig8b"]
        );
    }
}
