//! Criterion micro-benches for the simulation substrate: overlay
//! construction, Chord ring construction and lookup, attack execution,
//! message routing, and full Monte Carlo trials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_attack::{OneBurstAttacker, SuccessiveAttacker};
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams,
};
use sos_overlay::{ChordRing, NodeId, Overlay, Transport};
use sos_sim::engine::{Simulation, SimulationConfig};
use sos_faults::RetryPolicy;
use sos_sim::routing::{route_message_into, RouteScratch, RoutingPolicy};
use std::hint::black_box;

fn scenario(big_n: u64, sos: u64) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(big_n, sos, 0.5).expect("valid"))
        .layers(3)
        .mapping(MappingDegree::OneTo(5))
        .filters(10)
        .build()
        .expect("valid")
}

fn bench_overlay_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay-build");
    for big_n in [1_000u64, 10_000] {
        let s = scenario(big_n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(big_n), &s, |b, s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(Overlay::build(s, &mut rng)))
        });
    }
    group.finish();
}

fn bench_chord(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord");
    group.sample_size(20);
    for n in [1_000u32, 10_000] {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &members, |b, m| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(ChordRing::build(&mut rng, m)))
        });
        let mut rng = StdRng::seed_from_u64(3);
        let ring = ChordRing::build(&mut rng, &members);
        group.bench_with_input(BenchmarkId::new("lookup", n), &ring, |b, ring| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let from = NodeId(rng.gen_range(0..n));
                let key = rng.gen::<u64>();
                black_box(ring.lookup(from, key))
            })
        });
    }
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(20);
    let s = scenario(10_000, 100);
    group.bench_function("one-burst", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let overlay = Overlay::build(&s, &mut rng);
        b.iter(|| {
            let mut o = overlay.clone();
            black_box(
                OneBurstAttacker::new(AttackBudget::new(200, 2_000))
                    .execute(&mut o, &mut rng),
            )
        })
    });
    group.bench_function("successive", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let overlay = Overlay::build(&s, &mut rng);
        b.iter(|| {
            let mut o = overlay.clone();
            black_box(
                SuccessiveAttacker::new(
                    AttackBudget::new(200, 2_000),
                    SuccessiveParams::paper_default(),
                )
                .execute(&mut o, &mut rng),
            )
        })
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let s = scenario(10_000, 100);
    let mut rng = StdRng::seed_from_u64(7);
    let mut overlay = Overlay::build(&s, &mut rng);
    OneBurstAttacker::new(AttackBudget::new(200, 2_000)).execute(&mut overlay, &mut rng);
    for policy in [
        RoutingPolicy::RandomGood,
        RoutingPolicy::FirstGood,
        RoutingPolicy::Backtracking,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                let mut rng = StdRng::seed_from_u64(8);
                let mut scratch = RouteScratch::new();
                let retry = RetryPolicy::none();
                b.iter(|| {
                    let result = route_message_into(
                        &overlay,
                        &Transport::Direct,
                        policy,
                        None,
                        &retry,
                        &mut rng,
                        &mut scratch,
                    );
                    black_box((result.delivered, result.underlay_hops))
                })
            },
        );
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte-carlo");
    group.sample_size(10);
    let cfg = SimulationConfig::new(
        scenario(1_000, 100),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(20, 200),
        },
    )
    .trials(20)
    .routes_per_trial(50)
    .seed(9);
    group.bench_function("20x50-direct", |b| {
        b.iter(|| black_box(Simulation::new(cfg.clone()).run()))
    });
    group.finish();
}

/// Recorder overhead. `untraced` is the production path (no recorder
/// attached — zero observability cost by construction, same code as
/// `monte-carlo/20x50-direct`). `null-recorder` runs the traced runner
/// with the no-op recorder: the `enabled()` guard skips event
/// construction but per-trial metrics are still aggregated, which is
/// the cost of `--metrics-out` alone. `memory-recorder` adds full event
/// capture.
fn bench_recorder_overhead(c: &mut Criterion) {
    use sos_observe::{MemoryRecorder, NullRecorder};
    let mut group = c.benchmark_group("recorder-overhead");
    group.sample_size(10);
    let cfg = SimulationConfig::new(
        scenario(1_000, 100),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(20, 200),
        },
    )
    .trials(20)
    .routes_per_trial(50)
    .seed(9);
    group.bench_function("untraced", |b| {
        b.iter(|| black_box(Simulation::new(cfg.clone()).run()))
    });
    group.bench_function("null-recorder", |b| {
        b.iter(|| black_box(Simulation::new(cfg.clone()).run_traced(&NullRecorder)))
    });
    group.bench_function("memory-recorder", |b| {
        b.iter(|| {
            let recorder = MemoryRecorder::new();
            let out = black_box(Simulation::new(cfg.clone()).run_traced(&recorder));
            black_box(recorder.take_events());
            out
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay_build,
    bench_chord,
    bench_attacks,
    bench_routing,
    bench_monte_carlo,
    bench_recorder_overhead
);
criterion_main!(benches);
