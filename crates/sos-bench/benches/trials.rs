//! Trial-throughput benches for the zero-rebuild engine: full Monte
//! Carlo trials (overlay build, attack, routing) per transport and
//! overlay size. The companion `bench_baseline` binary measures the
//! same workloads against the allocating reference construction and
//! writes the machine-readable `BENCH_trials.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sos_core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos_sim::engine::{Simulation, SimulationConfig, TransportKind};
use std::hint::black_box;

fn scenario(big_n: u64) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(big_n, 100, 0.5).expect("valid"))
        .layers(3)
        .mapping(MappingDegree::OneTo(5))
        .filters(10)
        .build()
        .expect("valid")
}

fn bench_trial_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial-throughput");
    group.sample_size(10);
    for (label, kind) in [
        ("direct", TransportKind::Direct),
        ("chord", TransportKind::Chord),
    ] {
        for big_n in [1_000u64, 10_000, 100_000] {
            let cfg = SimulationConfig::new(
                scenario(big_n),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(100, 1_000),
                },
            )
            .trials(2)
            .routes_per_trial(20)
            .seed(13)
            .transport(kind);
            group.bench_with_input(BenchmarkId::new(label, big_n), &cfg, |b, cfg| {
                b.iter(|| black_box(Simulation::new(cfg.clone()).run()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trial_throughput);
criterion_main!(benches);
