//! Criterion benches: regeneration cost of every paper figure.
//!
//! One bench per figure panel (the same code paths the `fig*` binaries
//! print), so `cargo bench` both times the analytical pipeline and
//! re-derives every figure's numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use sos_bench::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig4a", |b| b.iter(|| black_box(figures::fig4a())));
    group.bench_function("fig4b", |b| b.iter(|| black_box(figures::fig4b())));
    group.bench_function("fig6a", |b| b.iter(|| black_box(figures::fig6a())));
    group.bench_function("fig6b", |b| b.iter(|| black_box(figures::fig6b())));
    group.bench_function("fig7", |b| b.iter(|| black_box(figures::fig7())));
    group.bench_function("fig8a", |b| b.iter(|| black_box(figures::fig8a())));
    group.bench_function("fig8b", |b| b.iter(|| black_box(figures::fig8b())));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
