//! Criterion benches for the deeper substrates: the exact congestion
//! analysis, the design optimizer, the Chord maintenance protocol, and
//! the flow model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_analysis::{
    AttackProfile, DesignSpace, ExactCongestionAnalysis, Optimizer,
};
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams,
};
use sos_des::Scheduler;
use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
use sos_overlay::NodeId;
use sos_sim::{FlowModel, FlowSimulation};
use std::hint::black_box;

fn scenario(mapping: MappingDegree) -> Scenario {
    Scenario::builder()
        .system(SystemParams::paper_default())
        .layers(3)
        .mapping(mapping)
        .filters(10)
        .build()
        .expect("valid")
}

fn bench_exact_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact-congestion");
    for mapping in [MappingDegree::ONE_TO_ONE, MappingDegree::OneToAll] {
        let s = scenario(mapping.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(mapping.label()),
            &s,
            |b, s| {
                b.iter(|| {
                    black_box(
                        ExactCongestionAnalysis::new(s, 2_000)
                            .unwrap()
                            .success_probability(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    let profiles = vec![
        AttackProfile::new(
            "flooder",
            AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(6_000),
            },
        ),
        AttackProfile::new(
            "intruder",
            AttackConfig::Successive {
                budget: AttackBudget::new(2_000, 1_000),
                params: SuccessiveParams::new(5, 0.2).unwrap(),
            },
        ),
    ];
    group.bench_function("paper-grid-2-profiles", |b| {
        b.iter(|| {
            black_box(
                Optimizer::new(
                    SystemParams::paper_default(),
                    DesignSpace::paper_grid(),
                    profiles.clone(),
                )
                .run()
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_chord_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord-protocol");
    group.sample_size(10);
    group.bench_function("build-128-ring", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut proto = ChordProtocol::new(ProtocolConfig::default());
            let mut sched = Scheduler::new();
            let mut ids: Vec<u64> = Vec::new();
            for i in 0..128u32 {
                let id = loop {
                    let id = rng.gen::<u64>();
                    if !ids.contains(&id) {
                        break id;
                    }
                };
                ids.push(id);
                if i == 0 {
                    proto.bootstrap(id, NodeId(i), &mut sched);
                } else {
                    let via = ids[rng.gen_range(0..i as usize)];
                    proto.join(id, NodeId(i), via, &mut sched);
                    let now = sched.now();
                    run_maintenance(&mut proto, &mut sched, now + 30);
                }
            }
            black_box(proto.convergence_fraction())
        })
    });
    group.finish();
}

fn bench_flow_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow-model");
    group.sample_size(10);
    let s = Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap();
    group.bench_function("20x50", |b| {
        b.iter(|| {
            black_box(
                FlowSimulation::new(
                    s.clone(),
                    AttackConfig::OneBurst {
                        budget: AttackBudget::new(50, 300),
                    },
                    FlowModel::new(100.0, 300.0),
                    20,
                    50,
                    3,
                )
                .run(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_analysis,
    bench_optimizer,
    bench_chord_protocol,
    bench_flow_model
);
criterion_main!(benches);
